package core

import (
	"testing"

	"repro/internal/context"
	"repro/internal/feedback"
	"repro/internal/sources"
)

// Failure injection: the pipeline is best-effort (§2.1) — individual bad
// sources, absurd contexts and malformed feedback must never take down
// the run.

func TestRunEmptyUniverse(t *testing.T) {
	w := sources.NewWorld(71, 50, 0)
	u := sources.Generate(w, sources.DefaultConfig(71, 0))
	wr := New(u, ProductConfig(), nil, nil)
	out, err := wr.Run()
	if err != nil {
		t.Fatalf("empty universe should not fail: %v", err)
	}
	if out.Len() != 0 {
		t.Errorf("rows = %d, want 0", out.Len())
	}
}

func TestRunSkipsUnparseableSource(t *testing.T) {
	u := buildUniverse(72, 5, true)
	// Inject a source of an unknown kind: extraction must fail for it and
	// the pipeline continue with the rest.
	u.Sources = append(u.Sources, &sources.Source{
		ID:   "src-bogus",
		Kind: sources.Kind("parquet"),
	})
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	out, err := wr.Run()
	if err != nil {
		t.Fatalf("pipeline should survive a bad source: %v", err)
	}
	if out.Len() == 0 {
		t.Error("good sources should still be wrangled")
	}
	for _, id := range wr.SelectedSources() {
		if id == "src-bogus" {
			t.Error("unparseable source must not be selected")
		}
	}
}

func TestRunSkipsStructurelessHTML(t *testing.T) {
	u := buildUniverse(73, 4, true)
	// An HTML source whose page has no repeated record structure.
	bad := &sources.Source{
		ID:   "src-blog",
		Kind: sources.KindHTML,
		// No Template: Payload would panic, so give it one record and a
		// template, then empty the records to break induction.
	}
	bad.Template = u.Sources[0].Template
	bad.Props = []string{"sku", "name", "price"}
	bad.Headers = map[string]string{}
	u.Sources = append(u.Sources, bad)
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatalf("structureless page should be skipped: %v", err)
	}
}

func TestMaxSourcesBeyondAvailable(t *testing.T) {
	u := buildUniverse(74, 3, true)
	uc := &context.UserContext{Name: "greedy",
		Weights:    map[context.Criterion]float64{context.Accuracy: 1},
		MaxSources: 99}
	wr := New(u, ProductConfig(), uc, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(wr.SelectedSources()); got != 3 {
		t.Errorf("selected %d, want all 3", got)
	}
}

func TestFeedbackForUnknownSource(t *testing.T) {
	u := buildUniverse(75, 4, true)
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	wr.Feedback.Add(feedback.Item{Kind: feedback.WrapperBroken, SourceID: "ghost"})
	wr.Feedback.Add(feedback.Item{Kind: feedback.ValueIncorrect, SourceID: "ghost", Entity: "x", Attribute: "price"})
	if _, err := wr.ReactToFeedback(); err != nil {
		t.Fatalf("unknown-source feedback should be tolerated: %v", err)
	}
}

func TestPairFeedbackWithDanglingKeys(t *testing.T) {
	u := buildUniverse(76, 4, true)
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	wr.Feedback.Add(feedback.Item{Kind: feedback.DuplicatePair, PairKey: feedback.PairKey("ghost#0", "ghost#1")})
	wr.Feedback.Add(feedback.Item{Kind: feedback.DuplicatePair, PairKey: "malformed-key-without-separator"})
	wr.Feedback.Add(feedback.Item{Kind: feedback.NotDuplicatePair, PairKey: feedback.PairKey(wr.RowKey(0), "ghost#9")})
	if _, err := wr.ReactToFeedback(); err != nil {
		t.Fatalf("dangling pair keys should be tolerated: %v", err)
	}
}

func TestSelfConflictingPairFeedback(t *testing.T) {
	u := buildUniverse(77, 5, true)
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	k := feedback.PairKey(wr.RowKey(0), wr.RowKey(1))
	// An expert says duplicate AND not-duplicate (e.g. two teammates).
	wr.Feedback.Add(feedback.Item{Kind: feedback.DuplicatePair, PairKey: k})
	wr.Feedback.Add(feedback.Item{Kind: feedback.NotDuplicatePair, PairKey: k})
	if _, err := wr.ReactToFeedback(); err != nil {
		t.Fatalf("contradictory feedback should be tolerated: %v", err)
	}
	// The tie is undecided; neither constraint should apply.
	must, cannot := wr.pairConstraints()
	for _, p := range append(must, cannot...) {
		if wr.RowKey(p.I) == wr.RowKey(0) && wr.RowKey(p.J) == wr.RowKey(1) {
			t.Error("tied pair must not become a constraint")
		}
	}
}

func TestRefreshCSVSource(t *testing.T) {
	u := buildUniverse(78, 6, true)
	var csvID string
	for _, s := range u.Sources {
		if s.Kind == sources.KindCSV {
			csvID = s.ID
			break
		}
	}
	if csvID == "" {
		t.Skip("no csv source")
	}
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	wr.EvolveWorld(0.5)
	if _, err := wr.RefreshSource(csvID); err != nil {
		t.Fatalf("csv refresh failed: %v", err)
	}
}

func TestZeroWeightContext(t *testing.T) {
	u := buildUniverse(79, 4, true)
	uc := &context.UserContext{Name: "apathy", Weights: map[context.Criterion]float64{}}
	wr := New(u, ProductConfig(), uc, fullDataCtx(u))
	out, err := wr.Run()
	if err != nil {
		t.Fatalf("zero-weight context should still run: %v", err)
	}
	if out.Len() == 0 {
		t.Error("no output under zero-weight context")
	}
}

func TestChurnAndRefreshHelper(t *testing.T) {
	u := buildUniverse(80, 5, true)
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	stats, err := wr.ChurnAndRefresh(0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Errorf("refreshed %d sources, want 2", len(stats))
	}
	if wr.FeedbackSeq() != 0 {
		t.Error("churn should not consume feedback")
	}
	if wr.AsOfNow().IsZero() {
		t.Error("AsOfNow should anchor to the world clock")
	}
}

func TestFeedbackBudgetEnforced(t *testing.T) {
	u := buildUniverse(83, 3, true)
	uc := &context.UserContext{Name: "thrifty",
		Weights:        map[context.Criterion]float64{context.Accuracy: 1},
		FeedbackBudget: 1.0}
	wr := New(u, ProductConfig(), uc, fullDataCtx(u))
	if _, err := wr.Run(); err != nil {
		t.Fatal(err)
	}
	added := 0
	for i := 0; i < 10; i++ {
		if wr.AddFeedback(feedback.Item{Kind: feedback.ValueCorrect, SourceID: "src-000", Cost: 0.4}) {
			added++
		}
	}
	if added != 2 {
		t.Errorf("budget 1.0 at 0.4/item should admit 2, admitted %d", added)
	}
	if rem := wr.BudgetRemaining(); rem < 0.19 || rem > 0.21 {
		t.Errorf("remaining = %f, want 0.2", rem)
	}
	// Unbounded context.
	wr2 := New(u, ProductConfig(), nil, nil)
	if wr2.BudgetRemaining() != -1 {
		t.Error("unbounded budget should report -1")
	}
	if !wr2.AddFeedback(feedback.Item{Kind: feedback.ValueCorrect, SourceID: "x", Cost: 999}) {
		t.Error("unbounded context should accept any cost")
	}
}
