package core

import (
	stdctx "context"
	"testing"

	"repro/internal/context"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// newStreamingWrangler builds a sharded streaming wrangler over a
// moderate synthetic universe.
func newStreamingWrangler(seed int64, nSources, shards int) *Wrangler {
	u := buildUniverse(seed, nSources, false)
	dataCtx := context.NewDataContext().WithTaxonomy(ontology.ProductTaxonomy())
	w := New(u, ProductConfig(), nil, dataCtx)
	w.IntegrationShards = shards
	w.StreamingRefresh = true
	return w
}

// TestStreamingRefreshScalesWithDirtyShards pins the streaming refresh's
// observable behaviour: a one-source refresh re-resolves only the shards
// its delta touched, reports the split in ReactStats, attributes the
// tail per DAG stage, and still shares every untouched shard's records
// with the predecessor version by pointer.
func TestStreamingRefreshScalesWithDirtyShards(t *testing.T) {
	const shards = 8
	w := newStreamingWrangler(7, 12, shards)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.memo == nil {
		t.Fatal("a streaming session's run must record a tail memo")
	}
	id := w.SelectedSources()[0]
	reused := 0
	for round := 0; round < 3; round++ {
		before := w.Serve.Latest().Data().Table
		w.EvolveWorld(0.1)
		stats, err := w.RefreshSource(id)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := stats.ShardsResolved + stats.ShardsReused; got != shards {
			t.Fatalf("round %d: resolved %d + reused %d != %d shards",
				round, stats.ShardsResolved, stats.ShardsReused, shards)
		}
		reused += stats.ShardsReused
		for _, stage := range []string{"replan", "trust", "merge", "integrate", "reextract"} {
			if _, ok := stats.Stages[stage]; !ok {
				t.Errorf("round %d: stage %q missing from %v", round, stage, stats.Stages)
			}
		}
		after := w.Serve.Latest().Data().Table
		if shared := SharedRecords(before, after); shared == 0 {
			t.Errorf("round %d: no records shared with the predecessor version", round)
		}
	}
	if reused == 0 {
		t.Error("three one-source refreshes never reused a shard")
	}
}

// TestStreamingValueFeedbackReusesClusters pins the fuse-only streaming
// reaction: value feedback re-estimates trust and re-fuses, but every
// shard's clusters carry over — ShardsReused reports all of them and the
// reaction is not a recluster.
func TestStreamingValueFeedbackReusesClusters(t *testing.T) {
	const shards = 4
	w := newStreamingWrangler(11, 8, shards)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	res := w.Results()
	if len(res) == 0 {
		t.Fatal("no fused results")
	}
	w.AddFeedback(feedback.Item{
		Kind: feedback.ValueIncorrect, SourceID: w.SelectedSources()[0],
		Entity: res[0].Entity, Attribute: res[0].Attribute, Worker: "expert", Cost: 1,
	})
	stats, err := w.ReactToFeedback()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reclustered {
		t.Error("value feedback must not recluster")
	}
	if !stats.Refused {
		t.Error("value feedback must refuse")
	}
	if stats.ShardsResolved != 0 || stats.ShardsReused != shards {
		t.Errorf("fuse-only reaction: resolved=%d reused=%d, want 0/%d",
			stats.ShardsResolved, stats.ShardsReused, shards)
	}
}

// TestStreamingFallsBackWithoutMemo pins the degradation path: with the
// memo invalidated (as after a failed tail), the next reaction runs a
// full tail, still succeeds, and re-records the memo so streaming
// resumes.
func TestStreamingFallsBackWithoutMemo(t *testing.T) {
	w := newStreamingWrangler(13, 8, 4)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	w.memo = nil
	w.EvolveWorld(0.2)
	if _, err := w.RefreshSource(w.SelectedSources()[0]); err != nil {
		t.Fatal(err)
	}
	if w.memo == nil {
		t.Fatal("full-tail fallback must re-record the memo")
	}
	// The re-recorded memo must be a valid streaming baseline.
	w.EvolveWorld(0.1)
	stats, err := w.RefreshSource(w.SelectedSources()[0])
	if err != nil {
		t.Fatal(err)
	}
	if stats.ShardsResolved+stats.ShardsReused != 4 {
		t.Errorf("streaming did not resume: %+v", stats)
	}
}

// serialOnly hides a provider's ConcurrentProvider implementation, so
// the orchestrator takes the serial acquisition path.
type serialOnly struct{ sources.Provider }

// TestConcurrentAcquireMatchesSerial pins the ConcurrentProvider
// contract end to end: refreshing a batch (with duplicate ids) through
// the concurrent acquisition path installs byte-identical working data
// to the serial path.
func TestConcurrentAcquireMatchesSerial(t *testing.T) {
	build := func(concurrent bool) (*Wrangler, *sources.Universe) {
		u := buildUniverse(19, 8, false)
		var p sources.Provider = u
		if !concurrent {
			// Hiding the ConcurrentProvider method forces the serial
			// acquisition path.
			p = &serialOnly{Provider: u}
		}
		dataCtx := context.NewDataContext().WithTaxonomy(ontology.ProductTaxonomy())
		w := New(p, ProductConfig(), nil, dataCtx)
		w.Parallelism = 4
		return w, u
	}
	drive := func(w *Wrangler, u *sources.Universe) *Wrangler {
		t.Helper()
		if _, err := w.Run(); err != nil {
			t.Fatal(err)
		}
		ids := w.SelectedSources()
		u.World.Evolve(0.3)
		batch := []string{ids[0], ids[1], ids[0], ids[2]} // duplicate on purpose
		if _, err := w.RefreshSourcesContext(stdctx.Background(), batch); err != nil {
			t.Fatal(err)
		}
		return w
	}
	serial := drive(build(false))
	conc := drive(build(true))
	if serial.Wrangled().String() != conc.Wrangled().String() {
		t.Error("concurrent acquisition produced a different table than serial")
	}
	st, ct := serial.Trust(), conc.Trust()
	if len(st) != len(ct) {
		t.Fatalf("trust maps differ in size: %d vs %d", len(st), len(ct))
	}
	for k, v := range st {
		if ct[k] != v {
			t.Errorf("trust[%s] = %v (concurrent) vs %v (serial)", k, ct[k], v)
		}
	}
	if serial.LastStats.SourcesProcessed != conc.LastStats.SourcesProcessed {
		t.Error("stats diverged between acquisition paths")
	}
}
