package core

import (
	"testing"

	"repro/internal/context"
	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/sources"
)

// buildUniverse creates a moderate product universe with price history.
func buildUniverse(seed int64, nSources int, clean bool) *sources.Universe {
	w := sources.NewWorld(seed, 200, 0)
	for i := 0; i < 30; i++ {
		w.Evolve(0.15)
	}
	cfg := sources.DefaultConfig(seed, nSources)
	if clean {
		cfg.CleanShare = 1
		cfg.StaleMax = 0
	}
	return sources.Generate(w, cfg)
}

// masterData builds the data context's master catalogue from a sample of
// the world (the e-commerce company knows its own products, Example 4).
func masterData(u *sources.Universe, n int) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i, p := range u.World.Products {
		if i >= n {
			break
		}
		price, _ := u.World.PriceAt(p.SKU, u.World.Clock)
		t.AppendValues(dataset.String(p.SKU), dataset.String(p.Name), dataset.String(p.Brand), dataset.Float(price))
	}
	return t
}

func fullDataCtx(u *sources.Universe) *context.DataContext {
	return context.NewDataContext().
		WithMaster(masterData(u, 100), "sku").
		WithTaxonomy(ontology.ProductTaxonomy())
}

func TestRunEndToEndClean(t *testing.T) {
	u := buildUniverse(41, 10, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	out, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no wrangled rows")
	}
	ev := w.EvaluateProducts()
	if ev.EntityPrecision < 0.95 {
		t.Errorf("entity precision = %f on clean universe", ev.EntityPrecision)
	}
	if ev.EntityRecall < 0.3 {
		t.Errorf("entity recall = %f — selection should cover a good slice", ev.EntityRecall)
	}
	if ev.NameAccuracy < 0.9 {
		t.Errorf("name accuracy = %f on clean universe", ev.NameAccuracy)
	}
	if ev.PriceAccuracy < 0.9 {
		t.Errorf("price accuracy = %f on clean universe", ev.PriceAccuracy)
	}
}

func TestRunEndToEndDirty(t *testing.T) {
	u := buildUniverse(42, 12, false)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	out, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no wrangled rows")
	}
	ev := w.EvaluateProducts()
	// Dirty universes still wrangle usefully: most entities real, names
	// mostly right (fusion outvotes typos).
	if ev.EntityPrecision < 0.8 {
		t.Errorf("entity precision = %f", ev.EntityPrecision)
	}
	if ev.NameAccuracy < 0.7 {
		t.Errorf("name accuracy = %f", ev.NameAccuracy)
	}
	if w.LastStats.RowsExtracted == 0 || w.LastStats.SourcesProcessed == 0 {
		t.Errorf("stats not recorded: %+v", w.LastStats)
	}
}

func TestMaxSourcesRespected(t *testing.T) {
	u := buildUniverse(43, 12, true)
	uc := &context.UserContext{
		Name:       "bounded",
		Weights:    map[context.Criterion]float64{context.Accuracy: 1},
		MaxSources: 3,
	}
	w := New(u, ProductConfig(), uc, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if got := len(w.SelectedSources()); got != 3 {
		t.Errorf("selected %d sources, want 3", got)
	}
}

func TestUserContextChangesSelection(t *testing.T) {
	u := buildUniverse(44, 14, false)
	dc := fullDataCtx(u)

	accCtx := &context.UserContext{Name: "routine",
		Weights:    map[context.Criterion]float64{context.Accuracy: 0.7, context.Timeliness: 0.3},
		MaxSources: 5}
	covCtx := &context.UserContext{Name: "investigation",
		Weights:    map[context.Criterion]float64{context.Completeness: 0.5, context.Relevance: 0.5},
		MaxSources: 5}

	wa := New(u, ProductConfig(), accCtx, dc)
	if _, err := wa.Run(); err != nil {
		t.Fatal(err)
	}
	wc := New(u, ProductConfig(), covCtx, dc)
	if _, err := wc.Run(); err != nil {
		t.Fatal(err)
	}
	a := wa.SelectedSources()
	c := wc.SelectedSources()
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Errorf("different contexts selected identical sources: %v", a)
	}
}

func TestProvenanceRecorded(t *testing.T) {
	u := buildUniverse(45, 6, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Prov.Len() < 6*3 {
		t.Errorf("provenance too sparse: %d records", w.Prov.Len())
	}
	aff := w.AffectedBy(u.Sources[0].ID)
	if len(aff) == 0 {
		t.Error("source change should affect downstream artefacts")
	}
}

func TestReactToValueFeedbackRefusesOnly(t *testing.T) {
	u := buildUniverse(46, 8, false)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Tell the wrangler a source is unreliable.
	bad := w.SelectedSources()[0]
	for i := 0; i < 6; i++ {
		w.Feedback.Add(feedback.Item{Kind: feedback.ValueIncorrect, SourceID: bad, Entity: "SKU-00001", Attribute: "price"})
	}
	stats, err := w.ReactToFeedback()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FeedbackItems != 6 {
		t.Errorf("items = %d", stats.FeedbackItems)
	}
	if stats.SourcesReextracted != 0 {
		t.Error("value feedback must not re-extract")
	}
	if stats.Reclustered {
		t.Error("value feedback must not recluster")
	}
	if !stats.Refused {
		t.Error("value feedback must refuse")
	}
	if trust := w.Trust()[bad]; trust > 0.5 {
		t.Errorf("trust of criticised source = %f, want < 0.5", trust)
	}
}

func TestReactToFeedbackNoItemsNoop(t *testing.T) {
	u := buildUniverse(47, 5, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	stats, err := w.ReactToFeedback()
	if err != nil {
		t.Fatal(err)
	}
	if stats.FeedbackItems != 0 || stats.Refused || stats.Reclustered {
		t.Errorf("noop expected: %+v", stats)
	}
}

func TestReactToWrapperFeedbackReextracts(t *testing.T) {
	u := buildUniverse(48, 8, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	var htmlID string
	for _, s := range u.Sources {
		if s.Kind == sources.KindHTML {
			htmlID = s.ID
			break
		}
	}
	if htmlID == "" {
		t.Skip("no html source")
	}
	w.Feedback.Add(feedback.Item{Kind: feedback.WrapperBroken, SourceID: htmlID})
	stats, err := w.ReactToFeedback()
	if err != nil {
		t.Fatal(err)
	}
	if stats.SourcesReextracted != 1 {
		t.Errorf("re-extracted %d sources, want 1", stats.SourcesReextracted)
	}
	if !stats.Reclustered || !stats.Refused {
		t.Error("wrapper repair must flow downstream")
	}
}

func TestRefreshSourceScopedRecompute(t *testing.T) {
	u := buildUniverse(49, 10, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	w.EvolveWorld(0.4)
	stats, err := w.RefreshSource(u.Sources[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SourcesReextracted != 1 || stats.Remapped != 1 {
		t.Errorf("refresh should touch exactly one source: %+v", stats)
	}
	if _, err := w.RefreshSource("ghost"); err == nil {
		t.Error("unknown source should fail")
	}
}

func TestIncrementalCheaperThanFull(t *testing.T) {
	u := buildUniverse(50, 14, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	w.EvolveWorld(0.3)
	inc, err := w.RefreshSource(u.Sources[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.FullRerun()
	if err != nil {
		t.Fatal(err)
	}
	if inc.SourcesReextracted >= full.SourcesReextracted {
		t.Errorf("incremental touched %d sources, full %d", inc.SourcesReextracted, full.SourcesReextracted)
	}
}

func TestPairFeedbackReclusters(t *testing.T) {
	u := buildUniverse(51, 8, false)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	// Label a handful of pairs using row keys (expert feedback).
	n := 0
	for i := 0; i < 8 && n < 6; i += 2 {
		w.Feedback.Add(feedback.Item{
			Kind:    feedback.DuplicatePair,
			PairKey: feedback.PairKey(w.RowKey(i), w.RowKey(i+1)),
		})
		n++
	}
	stats, err := w.ReactToFeedback()
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Reclustered {
		t.Error("pair feedback should recluster")
	}
}

func TestLocationDomain(t *testing.T) {
	world := sources.NewWorld(52, 0, 150)
	cfg := sources.DefaultConfig(52, 8)
	cfg.Domain = sources.DomainLocations
	cfg.CleanShare = 1
	u := sources.Generate(world, cfg)
	dc := context.NewDataContext().WithTaxonomy(ontology.LocationTaxonomy())
	w := New(u, LocationConfig(), nil, dc)
	out, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("no wrangled locations")
	}
	ev := w.EvaluateLocations()
	if ev.EntityRecall < 0.3 {
		t.Errorf("location recall = %f", ev.EntityRecall)
	}
	if ev.EntityPrecision < 0.8 {
		t.Errorf("location precision = %f", ev.EntityPrecision)
	}
}

func TestSnapshotReport(t *testing.T) {
	u := buildUniverse(53, 6, true)
	w := New(u, ProductConfig(), nil, fullDataCtx(u))
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	snap := w.Snapshot()
	if len(snap) == 0 {
		t.Fatal("empty snapshot")
	}
	selected := 0
	for _, rep := range snap {
		if rep.Selected {
			selected++
			if rep.Rows == 0 {
				t.Error("selected source with no rows")
			}
		}
	}
	if selected == 0 {
		t.Error("nothing selected")
	}
}

func TestTruthOracle(t *testing.T) {
	u := buildUniverse(54, 4, true)
	w := New(u, ProductConfig(), nil, nil)
	oracle := w.TruthOracle()
	p := u.World.Products[0]
	v, ok := oracle(p.SKU, "name")
	if !ok || v.String() != p.Name {
		t.Errorf("oracle name = %v", v)
	}
	if _, ok := oracle("SKU-99999", "name"); ok {
		t.Error("unknown entity should be !ok")
	}
	if _, ok := oracle(p.SKU, "nonexistent"); ok {
		t.Error("unknown attribute should be !ok")
	}
}

func TestDefaultContexts(t *testing.T) {
	u := buildUniverse(55, 4, true)
	w := New(u, ProductConfig(), nil, nil)
	if w.UserCtx == nil || w.DataCtx == nil || w.Feedback == nil {
		t.Fatal("defaults not filled")
	}
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	if w.Wrangled() == nil {
		t.Error("wrangled table missing")
	}
	if len(w.Results()) == 0 {
		t.Error("fusion results missing")
	}
}

func TestKVSourcesWrangled(t *testing.T) {
	w := sources.NewWorld(82, 150, 0)
	cfg := sources.DefaultConfig(82, 6)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare, cfg.KVShare = 0, 0, 0, 1
	cfg.CleanShare = 1
	cfg.StaleMax = 0
	u := sources.Generate(w, cfg)
	for _, s := range u.Sources {
		if s.Kind != sources.KindKV {
			t.Fatalf("source %s kind = %s", s.ID, s.Kind)
		}
	}
	wr := New(u, ProductConfig(), nil, fullDataCtx(u))
	out, err := wr.Run()
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Fatal("kv sources produced no wrangled rows")
	}
	ev := wr.EvaluateProducts()
	if ev.EntityPrecision < 0.9 || ev.NameAccuracy < 0.9 {
		t.Errorf("kv wrangling quality: precision=%f name=%f", ev.EntityPrecision, ev.NameAccuracy)
	}
}
