package core

import (
	"context"
	"testing"

	"repro/internal/feedback"
	"repro/internal/sources"
)

// deltaProvider is a controllable backend: fixed CSV sources whose
// payloads the test mutates between refreshes, so it can dictate exactly
// which blocking shard a reaction touches.
type deltaProvider struct {
	order []string
	srcs  map[string]*sources.Source
}

func (p *deltaProvider) List() []*sources.Source {
	out := make([]*sources.Source, len(p.order))
	for i, id := range p.order {
		out[i] = p.srcs[id]
	}
	return out
}
func (p *deltaProvider) Lookup(id string) *sources.Source  { return p.srcs[id] }
func (p *deltaProvider) Refresh(id string) *sources.Source { return p.srcs[id] }
func (p *deltaProvider) Clock() int                        { return 0 }

func csvSource(id, payload string) *sources.Source {
	return &sources.Source{ID: id, Kind: sources.KindCSV, Raw: payload}
}

// newDeltaWrangler builds a sharded wrangler over two sources whose rows
// form disjoint blocking components: srcA's names use only the letters
// {p,a,l,m}, srcB's only {b,r,o,n,d,i}, so no q-gram — boundary grams
// included — is ever shared, and a change to one source can only dirty
// the shard its own component hashes to.
func newDeltaWrangler(shards int) (*Wrangler, *deltaProvider) {
	p := &deltaProvider{
		order: []string{"srcA", "srcB"},
		srcs: map[string]*sources.Source{
			"srcA": csvSource("srcA",
				"sku,name,brand,price\nAX-1,palma lampal,acme,10\nAX-2,palma mallap,acme,20\n"),
			"srcB": csvSource("srcB",
				"sku,name,brand,price\nBR-1,brond dronib,umbra,30\nBR-2,brond bindor,umbra,40\n"),
		},
	}
	w := New(p, ProductConfig(), nil, nil)
	w.IntegrationShards = shards
	return w, p
}

// TestDeltaPublishSharesUntouchedPages is the delta-publication
// acceptance test: a refresh that leaves every shard's fused rows
// unchanged publishes a version sharing ALL its table records with the
// predecessor (pointer identity), and a refresh that changes one
// component's values publishes fresh records for that entity while still
// sharing the untouched shards' records.
func TestDeltaPublishSharesUntouchedPages(t *testing.T) {
	ctx := context.Background()
	w, p := newDeltaWrangler(4)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	v1 := w.Serve.Latest()
	if v1 == nil || v1.Data().Table.Len() != 4 {
		t.Fatalf("run published %v", v1)
	}

	// 1. No-op refresh: identical payload, identical fused rows — the new
	// version must share every record with its predecessor.
	if _, err := w.RefreshSourcesContext(ctx, []string{"srcB"}); err != nil {
		t.Fatal(err)
	}
	v2 := w.Serve.Latest()
	if v2.Seq() != 2 {
		t.Fatalf("refresh did not publish: seq=%d", v2.Seq())
	}
	if shared := SharedRecords(v1.Data().Table, v2.Data().Table); shared != v2.Data().Table.Len() {
		t.Fatalf("no-op refresh shared %d/%d records, want all", shared, v2.Data().Table.Len())
	}

	// 2. A refresh that changes srcB's values: srcB's shard republishes
	// fresh records, srcA's untouched shard keeps sharing.
	p.srcs["srcB"] = csvSource("srcB",
		"sku,name,brand,price\nBR-1,brond dronib,umbra,33\nBR-2,brond bindor,umbra,40\n")
	if _, err := w.RefreshSourcesContext(ctx, []string{"srcB"}); err != nil {
		t.Fatal(err)
	}
	v3 := w.Serve.Latest()
	tab2, tab3 := v2.Data().Table, v3.Data().Table
	shared := SharedRecords(tab2, tab3)
	if shared == 0 {
		t.Fatal("changed-source refresh shared nothing; untouched shards should share")
	}
	if shared == tab3.Len() {
		t.Fatal("changed-source refresh shared everything; the changed entity must republish")
	}
	// Per-entity: srcA's component rows are pointer-shared, the changed
	// srcB row is not, and its new value is served.
	kc := tab3.Schema().Index("sku")
	prev := map[string]int{}
	for i := 0; i < tab2.Len(); i++ {
		prev[tab2.Row(i)[kc].String()] = i
	}
	for i := 0; i < tab3.Len(); i++ {
		sku := tab3.Row(i)[kc].String()
		j, ok := prev[sku]
		if !ok {
			t.Fatalf("entity %s missing from previous version", sku)
		}
		sharedRow := &tab3.Row(i)[0] == &tab2.Row(j)[0]
		switch sku {
		case "AX-1", "AX-2":
			if !sharedRow {
				t.Errorf("untouched entity %s was republished instead of shared", sku)
			}
		case "BR-1":
			if sharedRow {
				t.Errorf("changed entity %s still shares its old record", sku)
			}
			if got := tab3.Row(i)[tab3.Schema().Index("price")].FloatVal(); got != 33 {
				t.Errorf("changed entity %s price = %v, want 33", sku, got)
			}
		}
	}
	// The predecessor version is frozen: its copy still serves the old
	// price even though the live data moved on.
	j := prev["BR-1"]
	if got := tab2.Row(j)[tab2.Schema().Index("price")].FloatVal(); got != 30 {
		t.Errorf("previous version mutated: BR-1 price = %v, want 30", got)
	}
}

// TestFuseOnlyReactionKeepsDelta pins the fuse-tail reaction path: a
// value-feedback reaction (trust moved, union and clustering did not)
// re-fuses per shard instead of falling back to the sequential fuse, so
// the published version still shares every unchanged record with its
// predecessor and the delta chain survives the most common reaction.
func TestFuseOnlyReactionKeepsDelta(t *testing.T) {
	ctx := context.Background()
	w, _ := newDeltaWrangler(4)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	v1 := w.Serve.Latest()
	for i := 0; i < 5; i++ {
		w.AddFeedback(feedback.Item{
			Kind: feedback.ValueIncorrect, SourceID: "srcB",
			Entity: "BR-1", Attribute: "price", Worker: "expert", Cost: 0.5,
		})
	}
	stats, err := w.ReactToFeedbackContext(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Refused || stats.Reclustered {
		t.Fatalf("expected a fuse-only reaction, got %+v", stats)
	}
	v2 := w.Serve.Latest()
	if v2.Seq() != v1.Seq()+1 {
		t.Fatalf("reaction did not publish: %d after %d", v2.Seq(), v1.Seq())
	}
	// srcB's trust dropped in the new version…
	if tr := v2.Data().Trust["srcB"]; tr >= v1.Data().Trust["srcB"] {
		t.Errorf("feedback did not lower srcB trust: %v -> %v", v1.Data().Trust["srcB"], tr)
	}
	// …but no fused value changed (no conflicting claims here), so every
	// record is still shared with the predecessor.
	if shared := SharedRecords(v1.Data().Table, v2.Data().Table); shared != v2.Data().Table.Len() {
		t.Errorf("fuse-only reaction shared %d/%d records, want all", shared, v2.Data().Table.Len())
	}
	// A follow-up refresh still publishes a delta — the chain was not
	// broken by the fuse-only reaction.
	if _, err := w.RefreshSourcesContext(ctx, []string{"srcB"}); err != nil {
		t.Fatal(err)
	}
	v3 := w.Serve.Latest()
	if shared := SharedRecords(v2.Data().Table, v3.Data().Table); shared != v3.Data().Table.Len() {
		t.Errorf("post-reaction refresh shared %d/%d records, want all", shared, v3.Data().Table.Len())
	}
}

// TestSequentialPublishStillCopies pins the contrast: without sharding
// there are no immutable pages, so every publication deep-copies and no
// records are shared between versions.
func TestSequentialPublishStillCopies(t *testing.T) {
	ctx := context.Background()
	w, _ := newDeltaWrangler(0)
	if _, err := w.Run(); err != nil {
		t.Fatal(err)
	}
	v1 := w.Serve.Latest()
	if _, err := w.RefreshSourcesContext(ctx, []string{"srcB"}); err != nil {
		t.Fatal(err)
	}
	v2 := w.Serve.Latest()
	if shared := SharedRecords(v1.Data().Table, v2.Data().Table); shared != 0 {
		t.Errorf("sequential publish shared %d records; deep copies share none", shared)
	}
}

// TestShardedRunMatchesSequentialAcrossReactions is the core-level twin
// of the facade identity tests: the same controlled source mutations
// produce byte-identical fingerprints (runFingerprint from the parallel
// tests) sequential vs sharded.
func TestShardedRunMatchesSequentialAcrossReactions(t *testing.T) {
	ctx := context.Background()
	seqW, seqP := newDeltaWrangler(0)
	shW, shP := newDeltaWrangler(3)
	if _, err := seqW.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := shW.Run(); err != nil {
		t.Fatal(err)
	}
	if a, b := runFingerprint(t, seqW), runFingerprint(t, shW); a != b {
		t.Fatalf("initial run diverged:\nsequential:\n%s\nsharded:\n%s", a, b)
	}
	mutate := func(p *deltaProvider) {
		p.srcs["srcA"] = csvSource("srcA",
			"sku,name,brand,price\nAX-1,palma lampal,acme,11\nAX-2,palma mallap,acme,20\nAX-3,palma palm,acme,25\n")
	}
	mutate(seqP)
	mutate(shP)
	if _, err := seqW.RefreshSourcesContext(ctx, []string{"srcA"}); err != nil {
		t.Fatal(err)
	}
	if _, err := shW.RefreshSourcesContext(ctx, []string{"srcA"}); err != nil {
		t.Fatal(err)
	}
	if a, b := runFingerprint(t, seqW), runFingerprint(t, shW); a != b {
		t.Fatalf("post-refresh diverged:\nsequential:\n%s\nsharded:\n%s", a, b)
	}
}
