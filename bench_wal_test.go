package repro

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/wrangletest"
)

// BenchmarkColdVsWarmStart is the PR-7 headline: standing a session up
// over a 24-source universe and reacting to one churned source, cold
// (full pipeline run — every source extracted, matched, mapped, selected,
// resolved and fused — then the reaction) versus warm (open the durable
// log, replay it into the snapshot store and working state, then the same
// reaction as a partial tail over the restored streaming memo). Restore
// cost scales with the log — per-source states, the retained versions and
// their deduplicated pages — not with the pipeline, so the warm path
// skips the entire extraction fan-out and integration; shards_reused/op
// confirms the first post-restart reaction really ran warm. `make bench`
// records this table to BENCH_PR7.json.
func BenchmarkColdVsWarmStart(b *testing.B) {
	const (
		seed     = int64(3)
		nSources = 24
		shards   = 4
		churn    = 0.1
	)
	react := func(b *testing.B, w *core.Wrangler) core.ReactStats {
		b.Helper()
		w.EvolveWorld(churn)
		stats, err := w.RefreshSource(w.SelectedSources()[0])
		if err != nil {
			b.Fatal(err)
		}
		return stats
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w := wrangletest.NewStreamingWrangler(seed, nSources, shards)
			if _, err := w.Run(); err != nil {
				b.Fatal(err)
			}
			react(b, w)
		}
	})
	b.Run("warm", func(b *testing.B) {
		// One cold run seeds the log; every iteration then opens it the
		// way a restarted process would.
		dir := b.TempDir()
		seedW := wrangletest.NewStreamingWrangler(seed, nSources, shards)
		d, err := core.OpenDurableLog(dir, core.FsyncOnCheckpoint)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := seedW.AttachDurableLog(d); err != nil {
			b.Fatal(err)
		}
		if _, err := seedW.Run(); err != nil {
			b.Fatal(err)
		}
		if err := seedW.Durable().Close(); err != nil {
			b.Fatal(err)
		}
		reused := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w := wrangletest.NewStreamingWrangler(seed, nSources, shards)
			d, err := core.OpenDurableLog(dir, core.FsyncOnCheckpoint)
			if err != nil {
				b.Fatal(err)
			}
			restored, err := w.AttachDurableLog(d)
			if err != nil {
				b.Fatal(err)
			}
			if !restored {
				b.Fatal("warm start restored nothing")
			}
			stats := react(b, w)
			if stats.ShardsReused == 0 {
				b.Fatal(fmt.Sprintf("warm reaction ran cold: %+v", stats))
			}
			reused += stats.ShardsReused
			if err := w.Durable().Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(reused)/float64(b.N), "shards_reused/op")
	})
}
