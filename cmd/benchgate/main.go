// Command benchgate is the perf-trend gate over the committed
// BENCH_*.json trajectory. It parses Go benchmark output — either raw
// `go test -bench` text or the `-json` (test2json) stream the Makefile
// records — compares a fresh multi-sample run against the committed
// baselines, and exits non-zero on a significant regression.
//
// Regression rule: a benchmark regresses when every fresh sample is
// slower than baseline × -max-time-ratio (comparing the *minimum* of
// the fresh samples, the standard noise floor for wall-clock on shared
// runners), or when the median allocs/op exceeds baseline ×
// -max-alloc-ratio (allocation counts are deterministic, so the bound
// is tight). A benchmark missing from the baselines is reported but
// never fails the gate; a baseline benchmark missing from the fresh run
// fails it — a renamed benchmark silently dropping out of the trend is
// exactly what the gate exists to catch (restrict with -match when the
// fresh run intentionally covers a subset).
//
// -dump converts the inputs to plain benchstat-compatible text instead
// of gating, for machines that have benchstat installed.
//
// Usage:
//
//	benchgate -new fresh.json -baseline BENCH_PR3.json [-baseline ...]
//	          [-match regexp] [-max-time-ratio 1.5] [-max-alloc-ratio 1.15]
//	benchgate -dump file.json [file.json ...]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// sample is one benchmark result line's parsed metrics.
type sample struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
	hasAllocs   bool
}

// benchLine matches "BenchmarkName-4   100   12345 ns/op   67 B/op ...".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.+)$`)

// procSuffix is the trailing GOMAXPROCS marker Go appends to benchmark
// names ("-4"). Stripped so runs from machines with different core
// counts compare under one name.
var procSuffix = regexp.MustCompile(`-\d+$`)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func main() {
	var baselines multiFlag
	newFile := flag.String("new", "", "fresh benchmark run (raw or test2json)")
	flag.Var(&baselines, "baseline", "committed baseline file (repeatable)")
	match := flag.String("match", "", "only gate benchmarks whose name matches this regexp")
	timeRatio := flag.Float64("max-time-ratio", 1.5, "fail when min(fresh ns/op) exceeds baseline × this")
	allocRatio := flag.Float64("max-alloc-ratio", 1.15, "fail when median(fresh allocs/op) exceeds baseline × this")
	dump := flag.Bool("dump", false, "convert the positional files to benchstat text and exit")
	flag.Parse()

	if *dump {
		if err := dumpFiles(flag.Args()); err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		return
	}
	if *newFile == "" || len(baselines) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: need -new and at least one -baseline (or -dump)")
		os.Exit(2)
	}
	var nameRE *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate: bad -match:", err)
			os.Exit(2)
		}
		nameRE = re
	}

	fresh, err := parseFile(*newFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	base := map[string][]sample{}
	for _, f := range baselines {
		m, err := parseFile(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchgate:", err)
			os.Exit(2)
		}
		for name, ss := range m {
			base[name] = append(base[name], ss...)
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		if nameRE == nil || nameRE.MatchString(name) {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	failed := false
	for _, name := range names {
		b := median(base[name], func(s sample) float64 { return s.nsPerOp })
		ss, ok := fresh[name]
		if !ok {
			fmt.Printf("MISSING  %-60s baseline %s — not in the fresh run\n", name, fmtNS(b))
			failed = true
			continue
		}
		newMin := minOf(ss, func(s sample) float64 { return s.nsPerOp })
		ratio := newMin / b
		verdict := "ok      "
		if newMin > b**timeRatio {
			verdict = "SLOWER  "
			failed = true
		}
		fmt.Printf("%s %-60s %s → %s (min of %d)  ×%.2f (limit ×%.2f)\n",
			verdict, name, fmtNS(b), fmtNS(newMin), len(ss), ratio, *timeRatio)

		ba := median(base[name], func(s sample) float64 { return s.allocsPerOp })
		if hasAllocs(base[name]) && hasAllocs(ss) {
			na := median(ss, func(s sample) float64 { return s.allocsPerOp })
			// +2 absolute slack keeps near-zero baselines from failing on
			// a single incidental allocation.
			if na > ba**allocRatio+2 {
				fmt.Printf("ALLOCS   %-60s %.0f → %.0f allocs/op (limit ×%.2f)\n", name, ba, na, *allocRatio)
				failed = true
			}
		}
	}
	newOnly := 0
	for name := range fresh {
		if _, ok := base[name]; !ok {
			newOnly++
		}
	}
	if newOnly > 0 {
		fmt.Printf("%d benchmark(s) in the fresh run have no baseline yet (not gated)\n", newOnly)
	}
	if failed {
		fmt.Println("\nbenchgate: FAIL — significant regression against the committed trajectory")
		os.Exit(1)
	}
	fmt.Println("\nbenchgate: ok")
}

// parseFile reads one benchmark output file — raw text or a test2json
// stream — and returns samples grouped by normalized benchmark name.
func parseFile(path string) (map[string][]sample, error) {
	lines, err := textLines(path)
	if err != nil {
		return nil, err
	}
	out := map[string][]sample{}
	for _, line := range lines {
		name, s, ok := parseBenchLine(line)
		if !ok {
			continue
		}
		out[name] = append(out[name], s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines found", path)
	}
	return out, nil
}

// textLines reads a benchmark output file and returns its logical text
// lines. test2json splits one benchmark result across several "output"
// events ("BenchmarkX/sub \t" in one, "  2\t 60246 ns/op\n" in the
// next), so JSON streams are reassembled by concatenating Output
// payloads before splitting on newlines.
func textLines(path string) ([]string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var buf strings.Builder
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		raw := sc.Text()
		if strings.HasPrefix(raw, "{") {
			var ev struct{ Action, Output string }
			if json.Unmarshal([]byte(raw), &ev) == nil {
				if ev.Action == "output" {
					buf.WriteString(ev.Output)
				}
				continue
			}
		}
		buf.WriteString(raw)
		buf.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return strings.Split(buf.String(), "\n"), nil
}

// parseBenchLine parses one "BenchmarkX-N iters metrics..." line.
func parseBenchLine(line string) (string, sample, bool) {
	m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
	if m == nil {
		return "", sample{}, false
	}
	name := procSuffix.ReplaceAllString(m[1], "")
	fields := strings.Fields(m[3])
	var s sample
	seen := false
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			s.nsPerOp = v
			seen = true
		case "B/op":
			s.bytesPerOp = v
		case "allocs/op":
			s.allocsPerOp = v
			s.hasAllocs = true
		}
	}
	return name, s, seen
}

func hasAllocs(ss []sample) bool {
	for _, s := range ss {
		if s.hasAllocs {
			return true
		}
	}
	return false
}

func median(ss []sample, f func(sample) float64) float64 {
	vals := make([]float64, 0, len(ss))
	for _, s := range ss {
		vals = append(vals, f(s))
	}
	sort.Float64s(vals)
	if len(vals) == 0 {
		return 0
	}
	return vals[len(vals)/2]
}

func minOf(ss []sample, f func(sample) float64) float64 {
	min := f(ss[0])
	for _, s := range ss[1:] {
		if v := f(s); v < min {
			min = v
		}
	}
	return min
}

func fmtNS(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// dumpFiles re-emits the input files' benchmark lines as plain text —
// the exact format `benchstat old.txt new.txt` consumes.
func dumpFiles(paths []string) error {
	if len(paths) == 0 {
		return fmt.Errorf("-dump needs at least one file")
	}
	for _, path := range paths {
		lines, err := textLines(path)
		if err != nil {
			return err
		}
		for _, line := range lines {
			t := strings.TrimSpace(line)
			if strings.HasPrefix(t, "goos:") || strings.HasPrefix(t, "goarch:") ||
				strings.HasPrefix(t, "pkg:") || strings.HasPrefix(t, "cpu:") {
				fmt.Println(line)
				continue
			}
			// Only full result lines — a bare "BenchmarkX" progress line
			// would confuse benchstat.
			if _, _, ok := parseBenchLine(line); ok {
				fmt.Println(line)
			}
		}
	}
	return nil
}
