package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/wrangle"
)

func getText(t *testing.T, url string, wantStatus int) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.Header.Get("Content-Type")
}

// TestMetricsEndpoint scrapes a served session: 200, the Prometheus
// content type, the advertised families, and a deterministic exposition
// (two idle scrapes are byte-identical; TYPE lines appear sorted).
func TestMetricsEndpoint(t *testing.T) {
	s, _, ts := newTestTier(t, wrangle.WithMetrics())
	if _, err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	text, ct := getText(t, ts.URL+"/metrics", http.StatusOK)
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text exposition", ct)
	}
	for _, want := range []string{
		`wrangle_reactions_total{origin="run"} 1`,
		`wrangle_reactions_total{origin="refresh"} 1`,
		"# TYPE wrangle_stage_seconds histogram",
		"wrangle_serve_publishes_total 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	var families []string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			families = append(families, line)
		}
	}
	if len(families) < 10 {
		t.Errorf("only %d families exposed", len(families))
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Errorf("families out of order: %q before %q", families[i-1], families[i])
		}
	}
	again, _ := getText(t, ts.URL+"/metrics", http.StatusOK)
	if text != again {
		t.Error("consecutive idle scrapes differ")
	}
}

// TestMetricsDisabled404 pins the no-telemetry surface: without
// WithMetrics the endpoint is a JSON 404, not an empty exposition.
func TestMetricsDisabled404(t *testing.T) {
	_, _, ts := newTestTier(t)
	body := getJSON(t, ts.URL+"/metrics", http.StatusNotFound)
	if body["error"] == nil {
		t.Errorf("404 body has no error field: %v", body)
	}
}

// TestTypedErrorCounters drives the two typed read-error paths through
// the HTTP tier and asserts each increments its own counter: a
// compacted ?version=N (410) and /watch?from (410) count as
// kind="compacted", an out-of-range version (404) as kind="not_found".
func TestTypedErrorCounters(t *testing.T) {
	s, _, ts := newTestTier(t, wrangle.WithMetrics())
	for i := 0; i < 3; i++ { // versions 2..4; retained [3 4]
		if _, err := s.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	compacted := s.Metrics().Counter("wrangle_serve_read_errors_total", "kind", "compacted")
	notFound := s.Metrics().Counter("wrangle_serve_read_errors_total", "kind", "not_found")

	getJSON(t, ts.URL+"/table?version=1", http.StatusGone)
	if got := compacted.Value(); got != 1 {
		t.Errorf("compacted counter after 410 = %d, want 1", got)
	}
	getJSON(t, ts.URL+"/table?version=99", http.StatusNotFound)
	if got := notFound.Value(); got != 1 {
		t.Errorf("not_found counter after 404 = %d, want 1", got)
	}
	getJSON(t, ts.URL+"/watch?from=1", http.StatusGone)
	if got := compacted.Value(); got != 2 {
		t.Errorf("compacted counter after watch 410 = %d, want 2", got)
	}
	// A malformed version is a client error, not a store error.
	getJSON(t, ts.URL+"/table?version=bogus", http.StatusBadRequest)
	if got := compacted.Value() + notFound.Value(); got != 3 {
		t.Errorf("400 moved a typed-error counter (total %d, want 3)", got)
	}
}

// TestHealthzTelemetry asserts /healthz embeds the counter/gauge summary
// when telemetry is on, and omits it when off.
func TestHealthzTelemetry(t *testing.T) {
	_, _, ts := newTestTier(t, wrangle.WithMetrics())
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	tel, ok := body["telemetry"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no telemetry section: %v", body)
	}
	if v, _ := tel[`wrangle_reactions_total{origin="run"}`].(float64); v != 1 {
		t.Errorf("telemetry run-reaction count = %v, want 1", tel)
	}

	_, _, tsOff := newTestTier(t)
	if body := getJSON(t, tsOff.URL+"/healthz", http.StatusOK); body["telemetry"] != nil {
		t.Error("healthz exposes telemetry without WithMetrics")
	}
}

// TestWatchFrameTelemetry asserts the SSE tier counts what it pushes:
// frames, frame bytes, and a delivery-latency observation per frame.
func TestWatchFrameTelemetry(t *testing.T) {
	s, st, ts := newTestTier(t, wrangle.WithMetrics())
	br, done := openWatch(t, ts.URL+"/watch")
	defer done()
	readSSE(t, br) // opening full frame
	if _, err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	ev := readSSE(t, br)
	for ev.comment != "" {
		ev = readSSE(t, br)
	}
	if got := st.watchFrames.Value(); got < 2 {
		t.Errorf("watch frames counter = %d, want >= 2", got)
	}
	if st.watchBytes.Value() == 0 {
		t.Error("watch bytes counter did not move")
	}
	if got := st.watchLatency.Count(); got < 2 {
		t.Errorf("delivery latency observations = %d, want >= 2", got)
	}
}

// TestPprofGate pins the opt-in: /debug/pprof is absent by default and
// serves only when the -pprof flag set the state's field.
func TestPprofGate(t *testing.T) {
	_, _, ts := newTestTier(t, wrangle.WithMetrics())
	getJSON(t, ts.URL+"/debug/pprof/", http.StatusNotFound)

	// The flag mounts the routes at handler-build time, so flip it and
	// rebuild the mux the way runServe does with -pprof.
	_, st2, _ := newTestTier(t, wrangle.WithMetrics())
	st2.pprof = true
	ts2 := httptest.NewServer(st2.handler())
	defer ts2.Close()
	text, _ := getText(t, ts2.URL+"/debug/pprof/cmdline", http.StatusOK)
	if text == "" {
		t.Error("pprof cmdline served an empty body")
	}
}

// TestMetricsConcurrentScrape hammers /metrics while the session churns —
// the HTTP half of the registry's writer-vs-scrape race coverage (CI
// runs it under -race).
func TestMetricsConcurrentScrape(t *testing.T) {
	s, _, ts := newTestTier(t, wrangle.WithMetrics())
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = s.Refresh(context.Background())
		}
	}()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				text, _ := getText(t, ts.URL+"/metrics", http.StatusOK)
				if !strings.Contains(text, "wrangle_reactions_total") {
					t.Error("scrape lost the reactions family")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	churn.Wait()
}
