package main

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/wrangle"
)

// newTestTier builds a small sharded session, runs it, and wraps the
// production handler in an httptest server — the exact mux runServe uses,
// minus listener, signals and the background refresher.
func newTestTier(t *testing.T, opts ...wrangle.Option) (*wrangle.Session, *serveState, *httptest.Server) {
	t.Helper()
	s, err := wrangle.New(append([]wrangle.Option{
		wrangle.WithSeed(6),
		wrangle.WithSyntheticSources(4),
		wrangle.WithIntegrationShards(2),
		wrangle.WithRetainVersions(2),
	}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := newServeState(s)
	ts := httptest.NewServer(st.handler())
	t.Cleanup(ts.Close)
	return s, st, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("GET %s Content-Type = %q, want application/json", url, ct)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return body
}

func TestHealthz(t *testing.T) {
	_, _, ts := newTestTier(t)
	body := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if body["status"] != "ok" {
		t.Errorf("status = %v, want ok", body["status"])
	}
	if v, _ := body["version"].(float64); v != 1 {
		t.Errorf("version = %v, want 1", body["version"])
	}
	if _, ok := body["uptimeSeconds"].(float64); !ok {
		t.Errorf("uptimeSeconds missing: %v", body)
	}
}

func TestUnknownPathIsJSON404(t *testing.T) {
	_, _, ts := newTestTier(t)
	for _, path := range []string{"/", "/nope", "/table/extra"} {
		body := getJSON(t, ts.URL+path, http.StatusNotFound)
		if body["error"] == nil {
			t.Errorf("%s: 404 body has no error field: %v", path, body)
		}
		if body["endpoints"] == nil {
			t.Errorf("%s: 404 body should advertise the endpoints", path)
		}
	}
}

// sseEvent is one parsed frame of a /watch stream.
type sseEvent struct {
	id, event string
	data      map[string]any
	comment   string // set for ": ..." heartbeat/drain frames
}

// readSSE parses the next server-sent event (or comment) off the stream.
func readSSE(t *testing.T, br *bufio.Reader) sseEvent {
	t.Helper()
	var ev sseEvent
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("reading SSE stream: %v (got so far: %+v)", err, ev)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if ev.id != "" || ev.event != "" || ev.comment != "" {
				return ev
			}
			// Leading blank line: keep reading.
		case strings.HasPrefix(line, ": "):
			ev.comment = strings.TrimPrefix(line, ": ")
		case strings.HasPrefix(line, "id: "):
			ev.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			ev.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.data); err != nil {
				t.Fatalf("bad SSE data %q: %v", line, err)
			}
		}
	}
}

func openWatch(t *testing.T, url string) (*bufio.Reader, func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	return bufio.NewReader(resp.Body), func() { resp.Body.Close() }
}

// TestWatchStreamsDeltas drives the full push path: the default stream
// opens with the current version as a full-state anchor, then a refresh
// arrives as a delta frame whose rows cover only the changed records.
func TestWatchStreamsDeltas(t *testing.T) {
	s, _, ts := newTestTier(t)
	br, done := openWatch(t, ts.URL+"/watch")
	defer done()

	first := readSSE(t, br)
	if first.event != "change" || first.id != "1" {
		t.Fatalf("opening frame = %s/%s, want change/1", first.event, first.id)
	}
	if first.data["full"] != true {
		t.Errorf("opening frame should be full (first publication): %v", first.data["full"])
	}
	rows, _ := first.data["rows"].(map[string]any)
	if len(rows) == 0 {
		t.Fatal("opening full frame carries no rows")
	}

	if _, err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	second := readSSE(t, br)
	for second.comment != "" { // skip any heartbeat
		second = readSSE(t, br)
	}
	if second.event != "change" || second.id != "2" {
		t.Fatalf("second frame = %s/%s, want change/2", second.event, second.id)
	}
	if second.data["full"] == true {
		t.Error("sharded refresh should publish a delta frame, not full")
	}
	// Page accounting covers both shards; rows list only changed records.
	cp, _ := second.data["changedPages"].(float64)
	sp, _ := second.data["sharedPages"].(float64)
	if int(cp+sp) != 2 {
		t.Errorf("changedPages %v + sharedPages %v, want 2 shards total", cp, sp)
	}
	deltaRows, _ := second.data["rows"].(map[string]any)
	if len(deltaRows) > len(rows) {
		t.Errorf("delta frame carries %d rows, full state is %d", len(deltaRows), len(rows))
	}
}

// TestWatchResumeAndGone pins the HTTP mapping of the retention boundary:
// resuming inside the window replays the missed versions; resuming below
// it is 410 Gone; a malformed resume point is 400.
func TestWatchResumeAndGone(t *testing.T) {
	s, _, ts := newTestTier(t) // retain 2
	for i := 0; i < 3; i++ {   // versions 2..4; retained [3 4]
		if _, err := s.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	br, done := openWatch(t, ts.URL+"/watch?from=2")
	defer done()
	if ev := readSSE(t, br); ev.id != "3" {
		t.Errorf("resume from 2: first frame id %s, want 3", ev.id)
	}
	if ev := readSSE(t, br); ev.id != "4" {
		t.Errorf("resume from 2: second frame id %s, want 4", ev.id)
	}

	body := getJSON(t, ts.URL+"/watch?from=1", http.StatusGone)
	if body["error"] == nil {
		t.Error("410 body should carry an error")
	}
	getJSON(t, ts.URL+"/watch?from=bogus", http.StatusBadRequest)
	// ?version=N readers report the same staleness the same way.
	getJSON(t, ts.URL+"/table?version=1", http.StatusGone)
	getJSON(t, ts.URL+"/table?version=99", http.StatusNotFound)
}

// TestServeDurableRestart drives the HTTP tier across a process restart:
// a durable session publishes past its retention window, the tier is torn
// down, a new session rehydrates from the state directory — and the new
// tier must serve the same latest version, answer ?version=N below the
// compacted window with exactly the same 410 Gone as the live tier did,
// and report the log in /healthz.
func TestServeDurableRestart(t *testing.T) {
	dir := t.TempDir()
	open := func() *wrangle.Session {
		s, err := wrangle.New(
			wrangle.WithSeed(6),
			wrangle.WithSyntheticSources(4),
			wrangle.WithIntegrationShards(2),
			wrangle.WithRetainVersions(2),
			wrangle.WithDurableLog(dir),
		)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	s := open()
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // versions 2..4; retained [3 4]
		if _, err := s.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(newServeState(s).handler())
	health := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if rv, _ := health["retainVersions"].(float64); rv != 2 {
		t.Errorf("healthz retainVersions = %v, want 2", health["retainVersions"])
	}
	durable, ok := health["durable"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no durable section: %v", health)
	}
	if lb, _ := durable["logBytes"].(float64); lb <= 0 {
		t.Errorf("healthz durable.logBytes = %v, want > 0", durable["logBytes"])
	}
	liveGone := getJSON(t, ts.URL+"/table?version=1", http.StatusGone)
	wantTable := s.Wrangled().String()
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := open()
	defer r.Close()
	if !r.Restored() {
		t.Fatal("serve restart did not restore the session")
	}
	ts2 := httptest.NewServer(newServeState(r).handler())
	defer ts2.Close()
	health2 := getJSON(t, ts2.URL+"/healthz", http.StatusOK)
	if v, _ := health2["version"].(float64); v != 4 {
		t.Errorf("restored healthz version = %v, want 4", health2["version"])
	}
	if _, ok := health2["durable"].(map[string]any); !ok {
		t.Errorf("restored healthz has no durable section: %v", health2)
	}
	// The compaction boundary answers exactly as before the restart —
	// same status, an error naming the same retention facts.
	restoredGone := getJSON(t, ts2.URL+"/table?version=1", http.StatusGone)
	if liveGone["error"] != restoredGone["error"] {
		t.Errorf("410 body diverged across restart:\nlive:     %v\nrestored: %v", liveGone["error"], restoredGone["error"])
	}
	getJSON(t, ts2.URL+"/watch?from=1", http.StatusGone)
	// Inside the window everything serves (the table body is a JSON
	// array, so only the status is asserted here).
	resp, err := http.Get(ts2.URL + "/table?version=3")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /table?version=3 after restart = %d, want 200", resp.StatusCode)
	}
	if got := r.Wrangled().String(); got != wantTable {
		t.Error("restored tier serves a different table")
	}
}

// TestWatchHeartbeat shrinks the heartbeat and expects ping comments on
// an otherwise idle stream.
func TestWatchHeartbeat(t *testing.T) {
	_, st, ts := newTestTier(t)
	st.heartbeat = 20 * time.Millisecond
	br, done := openWatch(t, ts.URL+"/watch")
	defer done()
	readSSE(t, br) // opening frame
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no heartbeat observed")
		}
		if ev := readSSE(t, br); ev.comment == "ping" {
			return
		}
	}
}

// TestWatchDrainOnShutdown proves closing the drain channel (what SIGINT
// does) ends every open stream with a shutdown comment instead of
// holding Shutdown hostage.
func TestWatchDrainOnShutdown(t *testing.T) {
	s, st, ts := newTestTier(t)
	br, done := openWatch(t, ts.URL+"/watch")
	defer done()
	readSSE(t, br) // opening frame
	close(st.drain)
	deadline := time.Now().Add(10 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("stream did not drain")
		}
		ev := readSSE(t, br)
		if ev.comment == "shutting down" {
			break
		}
	}
	// The server closed its end; the subscription must be released.
	for i := 0; i < 100 && s.Watchers() != 0; i++ {
		time.Sleep(10 * time.Millisecond)
	}
	if n := s.Watchers(); n != 0 {
		t.Errorf("Watchers after drain = %d, want 0", n)
	}
}
