// Command wrangle generates a synthetic source universe and runs the full
// Figure-1 wrangling pipeline over it under a chosen user context,
// printing the wrangled data preview, the per-source selection report and
// the ground-truth evaluation. It is a thin CLI over the public
// repro/wrangle package.
//
// With -serve it stays up as a small serving tier: HTTP readers query the
// latest committed snapshot version (lock-free) while a background loop
// churns the synthetic world and refreshes sources; Ctrl-C shuts down
// gracefully.
//
// Usage:
//
//	wrangle [-seed N] [-sources N] [-domain products|locations]
//	        [-context balanced|routine|investigation] [-max-sources N]
//	        [-parallelism N] [-shards N] [-streaming] [-retain N]
//	        [-csv out.csv]
//	        [-serve [-listen addr] [-refresh-every d] [-churn f] [-pprof]]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/wrangle"
	"repro/wrangle/synth"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	nSources := flag.Int("sources", 12, "number of sources to generate")
	domain := flag.String("domain", "products", "products or locations")
	ctxName := flag.String("context", "balanced", "user context: balanced, routine or investigation")
	maxSources := flag.Int("max-sources", 0, "source budget (0 = unlimited)")
	parallelism := flag.Int("parallelism", 0, "per-source worker bound (0 = one per CPU, 1 = sequential)")
	shards := flag.Int("shards", 0, "integration-tail shards (0 = sequential tail; output is identical at any count)")
	streaming := flag.Bool("streaming", false, "streaming refresh: reactions recompute only dirty shards (requires -shards; output is identical)")
	csvOut := flag.String("csv", "", "write wrangled table as CSV to this file")
	serveMode := flag.Bool("serve", false, "after the run, serve snapshot versions over HTTP while refreshing in the background")
	listen := flag.String("listen", "127.0.0.1:8080", "listen address for -serve")
	refreshEvery := flag.Duration("refresh-every", 2*time.Second, "background refresh interval for -serve")
	churn := flag.Float64("churn", 0.1, "world churn rate per background refresh tick for -serve")
	retain := flag.Int("retain", 0, "snapshot versions to retain (0 = default window)")
	stateDir := flag.String("state", "", "durable state directory: log committed versions there and warm-restart from it")
	fsyncAlways := flag.Bool("fsync-always", false, "fsync the durable log on every published version (requires -state)")
	pprofFlag := flag.Bool("pprof", false, "with -serve: mount net/http/pprof under /debug/pprof/")
	flag.Parse()

	// Flag combinations are validated before any work: -serve in
	// particular must not start a server off a half-valid configuration.
	if *parallelism < 0 {
		fmt.Fprintf(os.Stderr, "wrangle: parallelism must be >= 1, or 0 for one worker per CPU (got %d)\n", *parallelism)
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "wrangle: shards must be >= 1, or 0 for a sequential integration tail (got %d)\n", *shards)
		os.Exit(2)
	}
	if *retain < 0 {
		fmt.Fprintf(os.Stderr, "wrangle: retain must be >= 1, or 0 for the default window (got %d)\n", *retain)
		os.Exit(2)
	}
	if *streaming && *shards < 1 {
		fmt.Fprintln(os.Stderr, "wrangle: -streaming requires -shards >= 1 (the dirty set is tracked per shard)")
		os.Exit(2)
	}
	if *fsyncAlways && *stateDir == "" {
		fmt.Fprintln(os.Stderr, "wrangle: -fsync-always requires -state")
		os.Exit(2)
	}
	if !*serveMode {
		serveOnly := map[string]string{"listen": "", "refresh-every": "", "churn": "", "pprof": ""}
		flag.Visit(func(f *flag.Flag) {
			if _, ok := serveOnly[f.Name]; ok {
				fmt.Fprintf(os.Stderr, "wrangle: -%s only makes sense with -serve\n", f.Name)
				os.Exit(2)
			}
		})
	} else {
		if *csvOut != "" {
			fmt.Fprintln(os.Stderr, "wrangle: -csv cannot be combined with -serve (the table keeps changing; query /table instead)")
			os.Exit(2)
		}
		if *refreshEvery <= 0 {
			fmt.Fprintf(os.Stderr, "wrangle: refresh-every must be positive (got %s)\n", *refreshEvery)
			os.Exit(2)
		}
		if *churn < 0 || *churn > 1 {
			fmt.Fprintf(os.Stderr, "wrangle: churn must be in [0,1] (got %g)\n", *churn)
			os.Exit(2)
		}
	}
	opts := []wrangle.Option{wrangle.WithSourceBudget(*maxSources)}
	if *serveMode {
		// A serving tier always carries its telemetry: /metrics and the
		// /healthz summary read the session registry.
		opts = append(opts, wrangle.WithMetrics())
	}
	if *stateDir != "" {
		opts = append(opts, wrangle.WithDurableLog(*stateDir))
		if *fsyncAlways {
			opts = append(opts, wrangle.WithDurableFsync(wrangle.FsyncAlways))
		}
	}
	if *retain >= 1 {
		opts = append(opts, wrangle.WithRetainVersions(*retain))
	}
	if *parallelism >= 1 {
		// Output is byte-identical at any worker count; the flag only
		// trades wall-clock for cores.
		opts = append(opts, wrangle.WithParallelism(*parallelism))
	}
	if *shards >= 1 {
		// Likewise byte-identical at any shard count: sharding fans the
		// select → integrate → fuse tail out and turns publications into
		// per-shard deltas.
		opts = append(opts, wrangle.WithIntegrationShards(*shards))
	}
	if *streaming {
		// Reactions recompute only the shards their delta touched; -serve
		// refresh ticks report the split on each published version.
		opts = append(opts, wrangle.WithStreamingRefresh())
	}
	var u *synth.Universe
	switch *domain {
	case "locations":
		world := synth.NewWorld(*seed, 0, 300)
		scfg := synth.DefaultConfig(*seed, *nSources)
		scfg.Domain = synth.DomainLocations
		u = synth.Generate(world, scfg)
		opts = append(opts, wrangle.WithDomain(wrangle.Locations))
	case "products":
		world := synth.NewWorld(*seed, 300, 0)
		for i := 0; i < 24; i++ {
			world.Evolve(0.15)
		}
		u = synth.Generate(world, synth.DefaultConfig(*seed, *nSources))
		opts = append(opts,
			wrangle.WithDomain(wrangle.Products),
			wrangle.WithMasterData(masterData(u, 120), "sku"))
	default:
		fmt.Fprintf(os.Stderr, "wrangle: unknown domain %q (want products or locations)\n", *domain)
		os.Exit(2)
	}
	opts = append(opts, wrangle.WithProvider(u))

	ucOpt, ucName, err := userContext(*ctxName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if ucOpt != nil {
		opts = append(opts, ucOpt)
	}

	s, err := wrangle.New(opts...)
	if err != nil {
		// Package errors already carry the "wrangle:" prefix.
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	defer s.Close()
	var out *wrangle.Table
	if s.Restored() {
		// Warm restart: the state directory held committed versions, so
		// the session serves and reacts from the restored snapshot — no
		// cold run needed.
		out = s.Wrangled()
		if ds, ok := s.Durability(); ok {
			fmt.Printf("restored %d version(s) from %s (%d log bytes)\n\n",
				ds.RetainedVersions, ds.Dir, ds.Bytes)
		}
	} else {
		out, err = s.Run(context.Background())
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
	}

	fmt.Printf("universe: %d sources (%s), world clock %d\n", len(u.Sources), *domain, u.World.Clock)
	fmt.Printf("context:  %s (max sources %d)\n\n", ucName, *maxSources)
	fmt.Println("-- source selection --")
	snap := s.Snapshot()
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rep := snap[id]
		mark := " "
		if rep.Selected {
			mark = "*"
		}
		fmt.Printf("%s %-8s utility=%.3f rows=%-4d completeness=%.2f accuracy=%.2f timeliness=%.2f\n",
			mark, id, rep.Utility, rep.Rows, rep.Completeness, rep.Accuracy, rep.Timeliness)
	}

	fmt.Printf("\n-- wrangled data (%d entities) --\n%s\n", out.Len(), out.String())

	// The Example-5 report: conflicted lines are where reviewer feedback
	// pays off first.
	rep := s.Report("price intelligence", "price")
	sum := rep.Summarise()
	fmt.Printf("\n-- price report: %d lines, %d conflicted, mean confidence %.2f --\n",
		sum.Lines, sum.Conflicts, sum.MeanConfidence)
	if conflicted := rep.Conflicted(); len(conflicted) > 0 {
		show := conflicted
		if len(show) > 5 {
			show = show[:5]
		}
		for _, l := range show {
			fmt.Printf("! %-12s %-10s %-14s conf=%.2f sources=%v\n",
				l.Entity, l.Attribute, l.Value, l.Confidence, l.Supporters)
		}
	}

	ev := s.Evaluate()
	switch *domain {
	case "locations":
		fmt.Printf("\nevaluation: precision=%.3f recall=%.3f street-accuracy=%.3f\n",
			ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy)
	default:
		fmt.Printf("\nevaluation: precision=%.3f recall=%.3f name-acc=%.3f price-acc=%.3f mean-price-err=%.3f\n",
			ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy, ev.PriceAccuracy, ev.MeanPriceError)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := wrangle.WriteCSV(f, out); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvOut)
	}

	if *serveMode {
		if err := runServe(s, u, *listen, *refreshEvery, *churn, *pprofFlag); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
	}
	if *stateDir != "" {
		// Compact the log to the retention window and fsync, so the next
		// start replays a minimal, fully durable file.
		if err := s.Checkpoint(); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle: checkpoint:", err)
			os.Exit(1)
		}
	}
}

// userContext maps a CLI context name to a session option. "balanced" is
// the session default (nil option).
func userContext(name string) (wrangle.Option, string, error) {
	switch name {
	case "balanced":
		return nil, "balanced", nil
	case "routine":
		ahp, _ := wrangle.NewAHP(wrangle.Accuracy, wrangle.Timeliness, wrangle.Completeness)
		ahp.Set(wrangle.Accuracy, wrangle.Completeness, 5)
		ahp.Set(wrangle.Timeliness, wrangle.Completeness, 4)
		ahp.Set(wrangle.Accuracy, wrangle.Timeliness, 1)
		return wrangle.WithAHPWeights("routine price comparison", ahp), "routine price comparison", nil
	case "investigation":
		ahp, _ := wrangle.NewAHP(wrangle.Accuracy, wrangle.Timeliness, wrangle.Completeness)
		ahp.Set(wrangle.Completeness, wrangle.Accuracy, 5)
		ahp.Set(wrangle.Completeness, wrangle.Timeliness, 5)
		return wrangle.WithAHPWeights("issue investigation", ahp), "issue investigation", nil
	default:
		return nil, "", fmt.Errorf("wrangle: unknown context %q", name)
	}
}

func masterData(u *synth.Universe, n int) *wrangle.Table {
	t := wrangle.NewTable(wrangle.MustSchema(
		wrangle.Field{Name: "sku", Kind: wrangle.KindString},
		wrangle.Field{Name: "name", Kind: wrangle.KindString},
		wrangle.Field{Name: "brand", Kind: wrangle.KindString},
		wrangle.Field{Name: "price", Kind: wrangle.KindFloat},
	))
	for i, p := range u.World.Products {
		if i >= n {
			break
		}
		price, _ := u.World.PriceAt(p.SKU, u.World.Clock)
		t.AppendValues(wrangle.String(p.SKU), wrangle.String(p.Name),
			wrangle.String(p.Brand), wrangle.Float(price))
	}
	return t
}
