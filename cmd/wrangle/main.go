// Command wrangle generates a synthetic source universe and runs the full
// Figure-1 wrangling pipeline over it under a chosen user context,
// printing the wrangled data preview, the per-source selection report and
// the ground-truth evaluation.
//
// Usage:
//
//	wrangle [-seed N] [-sources N] [-domain products|locations]
//	        [-context balanced|routine|investigation] [-max-sources N]
//	        [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ontology"
	"repro/internal/report"
	"repro/internal/sources"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed")
	nSources := flag.Int("sources", 12, "number of sources to generate")
	domain := flag.String("domain", "products", "products or locations")
	ctxName := flag.String("context", "balanced", "user context: balanced, routine or investigation")
	maxSources := flag.Int("max-sources", 0, "source budget (0 = unlimited)")
	csvOut := flag.String("csv", "", "write wrangled table as CSV to this file")
	flag.Parse()

	var u *sources.Universe
	var cfg core.Config
	dc := context.NewDataContext()
	switch *domain {
	case "locations":
		world := sources.NewWorld(*seed, 0, 300)
		scfg := sources.DefaultConfig(*seed, *nSources)
		scfg.Domain = sources.DomainLocations
		u = sources.Generate(world, scfg)
		cfg = core.LocationConfig()
		dc.WithTaxonomy(ontology.LocationTaxonomy())
	default:
		world := sources.NewWorld(*seed, 300, 0)
		for i := 0; i < 24; i++ {
			world.Evolve(0.15)
		}
		u = sources.Generate(world, sources.DefaultConfig(*seed, *nSources))
		cfg = core.ProductConfig()
		dc.WithTaxonomy(ontology.ProductTaxonomy()).WithMaster(masterData(u, 120), "sku")
	}

	uc, err := userContext(*ctxName, *maxSources)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w := core.New(u, cfg, uc, dc)
	out, err := w.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wrangle:", err)
		os.Exit(1)
	}

	fmt.Printf("universe: %d sources (%s), world clock %d\n", len(u.Sources), *domain, u.World.Clock)
	fmt.Printf("context:  %s (max sources %d)\n\n", uc.Name, uc.MaxSources)
	fmt.Println("-- source selection --")
	snap := w.Snapshot()
	ids := make([]string, 0, len(snap))
	for id := range snap {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		rep := snap[id]
		mark := " "
		if rep.Selected {
			mark = "*"
		}
		fmt.Printf("%s %-8s utility=%.3f rows=%-4d completeness=%.2f accuracy=%.2f timeliness=%.2f\n",
			mark, id, rep.Utility, rep.Rows, rep.Completeness, rep.Accuracy, rep.Timeliness)
	}

	fmt.Printf("\n-- wrangled data (%d entities) --\n%s\n", out.Len(), out.String())

	// The Example-5 report: conflicted lines are where reviewer feedback
	// pays off first.
	rep := report.Build(w, "price intelligence", []string{"price"})
	sum := rep.Summarise()
	fmt.Printf("\n-- price report: %d lines, %d conflicted, mean confidence %.2f --\n",
		sum.Lines, sum.Conflicts, sum.MeanConfidence)
	if conflicted := rep.Conflicted(); len(conflicted) > 0 {
		show := conflicted
		if len(show) > 5 {
			show = show[:5]
		}
		for _, l := range show {
			fmt.Printf("! %-12s %-10s %-14s conf=%.2f sources=%v\n",
				l.Entity, l.Attribute, l.Value, l.Confidence, l.Supporters)
		}
	}

	switch *domain {
	case "locations":
		ev := w.EvaluateLocations()
		fmt.Printf("\nevaluation: precision=%.3f recall=%.3f street-accuracy=%.3f\n",
			ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy)
	default:
		ev := w.EvaluateProducts()
		fmt.Printf("\nevaluation: precision=%.3f recall=%.3f name-acc=%.3f price-acc=%.3f mean-price-err=%.3f\n",
			ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy, ev.PriceAccuracy, ev.MeanPriceError)
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := dataset.WriteCSV(f, out); err != nil {
			fmt.Fprintln(os.Stderr, "wrangle:", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *csvOut)
	}
}

func userContext(name string, maxSources int) (*context.UserContext, error) {
	switch name {
	case "balanced":
		return &context.UserContext{Name: "balanced", MaxSources: maxSources,
			Weights: map[context.Criterion]float64{
				context.Accuracy: 0.25, context.Completeness: 0.25,
				context.Timeliness: 0.25, context.Relevance: 0.25,
			}}, nil
	case "routine":
		ahp, _ := context.NewAHP(context.Accuracy, context.Timeliness, context.Completeness)
		ahp.Set(context.Accuracy, context.Completeness, 5)
		ahp.Set(context.Timeliness, context.Completeness, 4)
		ahp.Set(context.Accuracy, context.Timeliness, 1)
		return context.BuildUserContext("routine price comparison", ahp, maxSources, 0)
	case "investigation":
		ahp, _ := context.NewAHP(context.Accuracy, context.Timeliness, context.Completeness)
		ahp.Set(context.Completeness, context.Accuracy, 5)
		ahp.Set(context.Completeness, context.Timeliness, 5)
		return context.BuildUserContext("issue investigation", ahp, maxSources, 0)
	default:
		return nil, fmt.Errorf("wrangle: unknown context %q", name)
	}
}

func masterData(u *sources.Universe, n int) *dataset.Table {
	t := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i, p := range u.World.Products {
		if i >= n {
			break
		}
		price, _ := u.World.PriceAt(p.SKU, u.World.Clock)
		t.AppendValues(dataset.String(p.SKU), dataset.String(p.Name), dataset.String(p.Brand), dataset.Float(price))
	}
	return t
}
