package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/wrangle"
	"repro/wrangle/synth"
)

// runServe turns the CLI into a small serving tier over the session's
// versioned snapshot store: HTTP readers answer from the latest committed
// view (lock-free — they never wait on the session) and /watch pushes
// per-version deltas over the change feed, while a background loop churns
// the synthetic world and refreshes sources, committing a new version per
// reaction. SIGINT/SIGTERM drains watch subscribers and in-flight
// requests, stops the refresher and exits cleanly.
func runServe(s *wrangle.Session, u *synth.Universe, addr string, every time.Duration, churn float64, withPprof bool) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("\nserving on http://%s (refresh every %s, churn %.2f) — Ctrl-C to stop\n",
		ln.Addr(), every, churn)
	fmt.Printf("endpoints: %s (readers accept ?version=N; /watch accepts ?from=N)\n",
		strings.Join(endpoints, " "))

	st := newServeState(s)
	st.pprof = withPprof
	if withPprof {
		fmt.Printf("pprof:     http://%s/debug/pprof/\n", ln.Addr())
	}

	// The background write loop: evolve the synthetic world and refresh
	// one source per tick (round-robin), so readers watch versions advance
	// while each reaction stays cheap.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		tick := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			u.World.Evolve(churn)
			ids := s.SelectedSources()
			if len(ids) == 0 {
				continue
			}
			id := ids[tick%len(ids)]
			tick++
			if _, err := s.Refresh(ctx, id); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "wrangle: background refresh:", err)
			}
		}
	}()

	server := &http.Server{Handler: st.handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		stop()
		close(st.drain)
		wg.Wait()
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down…")
	// Drain first: open /watch streams write a closing comment and
	// return, so Shutdown is not pinned by long-lived subscribers.
	close(st.drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = server.Shutdown(shutdownCtx)
	wg.Wait()
	if v, verr := s.View(); verr == nil {
		fmt.Printf("served up to version %d (%d entities, %d watchers drained)\n",
			v.Version(), v.Table().Len(), s.Watchers())
	}
	return err
}

// defaultHeartbeat is how often an idle /watch stream emits a comment
// frame so proxies and clients can tell a quiet feed from a dead one.
const defaultHeartbeat = 10 * time.Second

// endpoints is the API surface, advertised on startup and in 404 bodies.
var endpoints = []string{
	"/version", "/table", "/report", "/stats", "/sources",
	"/watch", "/healthz", "/metrics",
}

// serveState is the HTTP tier's shared state, factored out of runServe so
// tests can drive the exact production handler through httptest without a
// listener, signals or the background refresher.
type serveState struct {
	s     *wrangle.Session
	start time.Time
	// drain is closed on shutdown: every /watch stream writes a closing
	// comment and returns, so Shutdown is not held hostage by open
	// long-poll connections.
	drain     chan struct{}
	heartbeat time.Duration
	// pprof mounts net/http/pprof under /debug/pprof/ — opt-in via the
	// -pprof flag because the profile endpoints expose internals and can
	// burn CPU on demand.
	pprof bool

	// HTTP-layer watch fan-out telemetry, resolved once from the session
	// registry (nil handles when telemetry is off — all writes no-op).
	watchFrames  *wrangle.Counter
	watchBytes   *wrangle.Counter
	watchLatency *wrangle.Histogram
}

func newServeState(s *wrangle.Session) *serveState {
	st := &serveState{s: s, start: time.Now(), drain: make(chan struct{}), heartbeat: defaultHeartbeat}
	reg := s.Metrics()
	st.watchFrames = reg.Counter("wrangle_watch_frames_total")
	st.watchBytes = reg.Counter("wrangle_watch_frame_bytes_total")
	st.watchLatency = reg.Histogram("wrangle_watch_delivery_seconds", wrangle.DurationBuckets())
	reg.Help("wrangle_watch_frames_total", "SSE frames written to /watch streams.")
	reg.Help("wrangle_watch_frame_bytes_total", "Bytes of SSE frames written to /watch streams.")
	reg.Help("wrangle_watch_delivery_seconds", "Publish-to-SSE-write latency per delivered frame.")
	return st
}

// handler builds the serving mux over the session's snapshot store. All
// read endpoints answer from committed versions, lock-free; /watch is the
// push path over the same store's change feed.
func (st *serveState) handler() http.Handler {
	s := st.s
	mux := http.NewServeMux()
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, v, map[string]any{
			"version":     v.Version(),
			"step":        v.Step(),
			"origin":      v.Origin(),
			"publishedAt": v.PublishedAt(),
			"entities":    v.Table().Len(),
			"retained":    v.Versions(),
		})
	})
	mux.HandleFunc("GET /table", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Wrangle-Version", strconv.FormatUint(v.Version(), 10))
		if err := wrangle.WriteJSON(w, v.Table()); err != nil {
			// Headers are gone; all we can do is log.
			fmt.Fprintln(os.Stderr, "wrangle: write table:", err)
		}
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		rep := v.Report()
		writeJSON(w, v, map[string]any{
			"title":   rep.Title,
			"summary": rep.Summarise(),
			"lines":   rep.Lines,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, v, map[string]any{
			"origin":      v.Origin(),
			"run":         v.Stats(),
			"runStages":   stagesMS(v.Stats().Stages),
			"react":       v.React(),
			"reactStages": stagesMS(v.React().Stages),
		})
	})
	mux.HandleFunc("GET /sources", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, v, map[string]any{
			"selected": v.Selected(),
			"trust":    v.Trust(),
			"sources":  v.Sources(),
		})
	})
	mux.HandleFunc("GET /healthz", st.handleHealthz)
	mux.HandleFunc("GET /watch", st.handleWatch)
	mux.HandleFunc("GET /metrics", st.handleMetrics)
	if st.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	// Everything else is an unknown path: a JSON 404 that tells the
	// caller what does exist, instead of the default plain-text page.
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(map[string]any{
			"error":     fmt.Sprintf("unknown path %q", r.URL.Path),
			"endpoints": endpoints,
		})
	})
	return mux
}

// handleHealthz is the liveness probe: always 200 once the server is up,
// reporting the latest committed version, the retention window, watcher
// count and how long the tier has been serving. Version 0 means nothing
// is published yet. Durable sessions additionally report their log —
// directory, size, last checkpointed version — so an operator can see at
// a glance how much a restart would replay.
func (st *serveState) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status":         "ok",
		"uptimeSeconds":  time.Since(st.start).Seconds(),
		"watchers":       st.s.Watchers(),
		"version":        uint64(0),
		"retainVersions": st.s.RetainedVersions(),
	}
	if v, err := st.s.View(); err == nil {
		body["version"] = v.Version()
		body["publishedAt"] = v.PublishedAt()
		body["retained"] = v.Versions()
	}
	if ds, ok := st.s.Durability(); ok {
		body["durable"] = map[string]any{
			"dir":               ds.Dir,
			"logBytes":          ds.Bytes,
			"lastCheckpointSeq": ds.LastCheckpointSeq,
			"loggedVersions":    ds.RetainedVersions,
		}
	}
	if reg := st.s.Metrics(); reg != nil {
		// The counter/gauge summary: reactions by origin, source
		// failures and task panics, serve read and watch traffic, and
		// the trust-fixpoint component shape (wrangle_trust_components,
		// wrangle_trust_components_reused_total) — the at-a-glance
		// numbers; histograms stay on /metrics.
		body["telemetry"] = reg.Summary()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// handleMetrics renders the session registry as Prometheus text
// exposition format. Output ordering is deterministic (families and
// series sorted by name), so consecutive scrapes differ only in values.
func (st *serveState) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := st.s.Metrics()
	if reg == nil {
		jsonError(w, http.StatusNotFound, "telemetry disabled: session built without WithMetrics")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := reg.WritePrometheus(w); err != nil {
		fmt.Fprintln(os.Stderr, "wrangle: write metrics:", err)
	}
}

// watchFrame is the JSON payload of one /watch SSE event: the version
// header plus the delta — only the changed records' rows are inlined
// (shared pages are elided entirely), so frame size scales with what the
// reaction touched, not with the table. A full frame (first publication,
// sequential sessions) carries every row.
type watchFrame struct {
	Version       uint64         `json:"version"`
	Step          uint64         `json:"step"`
	Origin        wrangle.Origin `json:"origin"`
	PublishedAt   time.Time      `json:"publishedAt"`
	Full          bool           `json:"full"`
	ChangedShards []int          `json:"changedShards,omitempty"`
	ChangedPages  int            `json:"changedPages"`
	SharedPages   int            `json:"sharedPages"`
	// Rows maps each changed record's entity id to its new row (every
	// row when Full). Deleted records appear in RemovedRecords instead.
	Rows           map[string]map[string]any `json:"rows,omitempty"`
	RemovedRecords []string                  `json:"removedRecords,omitempty"`
	// Evicted marks the stream's final frame: the subscriber fell behind
	// the server-side buffer. Reconnect with ?from=<last seen version>.
	Evicted bool `json:"evicted,omitempty"`
}

// handleWatch streams the session's change feed as Server-Sent Events:
// one "change" event per committed version (id = version), ": ping"
// comments as heartbeats, and a final "evicted" event if the client
// cannot keep up. ?from=N resumes after the last version the client saw;
// a resume point already compacted out of the retention window is 410
// Gone — re-bootstrap from /table. Without ?from the stream opens with
// the current version as its first frame.
func (st *serveState) handleWatch(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		jsonError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	var from uint64
	if q := r.URL.Query().Get("from"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad from version: "+q)
			return
		}
		from = n
	} else if v, err := st.s.View(); err == nil {
		// Default: replay just the latest version, so every new stream
		// opens with a frame that anchors the client's state.
		from = v.Version() - 1
	}
	ch, cancel, err := st.s.Watch(r.Context(), from)
	if err != nil {
		switch {
		case errors.Is(err, wrangle.ErrCompacted):
			jsonError(w, http.StatusGone, err.Error())
		default:
			jsonError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	defer cancel()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	hb := time.NewTicker(st.heartbeat)
	defer hb.Stop()
	for {
		select {
		case c, open := <-ch:
			if !open {
				return
			}
			n, err := writeSSE(w, c)
			if err != nil {
				return
			}
			fl.Flush()
			st.watchFrames.Inc()
			st.watchBytes.Add(int64(n))
			st.watchLatency.Observe(time.Since(c.View.PublishedAt()).Seconds())
			if c.Evicted {
				return
			}
		case <-hb.C:
			if _, err := io.WriteString(w, ": ping\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-st.drain:
			io.WriteString(w, ": shutting down\n\n")
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one change as an SSE event. The event id is the
// version, so EventSource clients get Last-Event-ID resume for free
// (reconnect with ?from=<id>).
func writeSSE(w io.Writer, c wrangle.Change) (int, error) {
	cs := c.Changes
	frame := watchFrame{
		Version:        c.Version(),
		Step:           c.View.Step(),
		Origin:         c.View.Origin(),
		PublishedAt:    c.View.PublishedAt(),
		Full:           cs.Full,
		ChangedShards:  cs.ChangedShards,
		ChangedPages:   cs.ChangedPages,
		SharedPages:    cs.SharedPages,
		RemovedRecords: cs.RemovedRecords,
		Evicted:        c.Evicted,
	}
	event := "change"
	switch {
	case c.Evicted:
		// Metadata only: the client missed this version's delta and must
		// resume (or re-bootstrap); inlining rows would be misleading.
		event = "evicted"
	case cs.Full:
		frame.Rows = allRows(c.View)
	default:
		frame.Rows = changedRows(c.View, cs.ChangedRecords)
	}
	data, err := json.Marshal(frame)
	if err != nil {
		return 0, err
	}
	return fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", c.Version(), event, data)
}

// allRows serialises every row of the pinned version, keyed by entity id.
func allRows(v *wrangle.View) map[string]map[string]any {
	t, ents := v.Table(), v.Entities()
	out := make(map[string]map[string]any, t.Len())
	for i := 0; i < t.Len(); i++ {
		key := strconv.Itoa(i)
		if i < len(ents) {
			key = ents[i]
		}
		out[key] = rowJSON(t, i)
	}
	return out
}

// changedRows serialises only the named records, resolved to rows via the
// version's sorted entity index — O(changed × log n), independent of how
// many rows the table holds.
func changedRows(v *wrangle.View, changed []string) map[string]map[string]any {
	t, ents := v.Table(), v.Entities()
	out := make(map[string]map[string]any, len(changed))
	for _, e := range changed {
		i := sort.SearchStrings(ents, e)
		if i < len(ents) && ents[i] == e {
			out[e] = rowJSON(t, i)
		}
	}
	return out
}

// rowJSON renders one row as a flat JSON object (dataset.WriteJSON's
// per-row shape: null cells elided, kinds mapped to native JSON types).
func rowJSON(t *wrangle.Table, i int) map[string]any {
	names := t.Schema().Names()
	o := make(map[string]any, len(names))
	for j, val := range t.Row(i) {
		if val.IsNull() {
			continue
		}
		switch val.Kind() {
		case wrangle.KindInt:
			o[names[j]] = val.IntVal()
		case wrangle.KindFloat:
			o[names[j]] = val.FloatVal()
		case wrangle.KindBool:
			o[names[j]] = val.BoolVal()
		default:
			o[names[j]] = val.String()
		}
	}
	return o
}

// jsonError writes a JSON error body with the given status.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{"error": msg})
}

// viewFor resolves the request's view: the latest committed version, or
// the pinned one named by ?version=N. It writes the HTTP error itself and
// reports ok=false when there is nothing to serve. A version already
// compacted out of the retention window is 410 Gone (like /watch resume),
// a version never published is 404.
func viewFor(s *wrangle.Session, w http.ResponseWriter, r *http.Request) (*wrangle.View, bool) {
	v, err := s.View()
	if err != nil {
		jsonError(w, http.StatusServiceUnavailable, err.Error())
		return nil, false
	}
	if q := r.URL.Query().Get("version"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			jsonError(w, http.StatusBadRequest, "bad version: "+q)
			return nil, false
		}
		if v, err = v.At(n); err != nil {
			status := http.StatusNotFound
			if errors.Is(err, wrangle.ErrCompacted) {
				status = http.StatusGone
			}
			jsonError(w, status, err.Error())
			return nil, false
		}
	}
	return v, true
}

// writeJSON renders a response stamped with the view's version header.
func writeJSON(w http.ResponseWriter, v *wrangle.View, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Wrangle-Version", strconv.FormatUint(v.Version(), 10))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		fmt.Fprintln(os.Stderr, "wrangle: write response:", err)
	}
}

// stagesMS renders a stage-timing map in milliseconds for readability
// (raw time.Duration marshals as opaque nanoseconds).
func stagesMS(stages map[string]time.Duration) map[string]float64 {
	if len(stages) == 0 {
		return nil
	}
	out := make(map[string]float64, len(stages))
	for k, d := range stages {
		out[k] = float64(d.Microseconds()) / 1000
	}
	return out
}
