package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"syscall"
	"time"

	"repro/wrangle"
	"repro/wrangle/synth"
)

// runServe turns the CLI into a small serving tier over the session's
// versioned snapshot store: HTTP readers answer from the latest committed
// view (lock-free — they never wait on the session), while a background
// loop churns the synthetic world and refreshes sources, committing a new
// version per reaction. SIGINT/SIGTERM drains in-flight requests, stops
// the refresher and exits cleanly.
func runServe(s *wrangle.Session, u *synth.Universe, addr string, every time.Duration, churn float64) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("\nserving on http://%s (refresh every %s, churn %.2f) — Ctrl-C to stop\n",
		ln.Addr(), every, churn)
	fmt.Println("endpoints: /version /table /report /stats /sources (all accept ?version=N)")

	mux := http.NewServeMux()
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, v, map[string]any{
			"version":     v.Version(),
			"step":        v.Step(),
			"origin":      v.Origin(),
			"publishedAt": v.PublishedAt(),
			"entities":    v.Table().Len(),
			"retained":    v.Versions(),
		})
	})
	mux.HandleFunc("GET /table", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Wrangle-Version", strconv.FormatUint(v.Version(), 10))
		if err := wrangle.WriteJSON(w, v.Table()); err != nil {
			// Headers are gone; all we can do is log.
			fmt.Fprintln(os.Stderr, "wrangle: write table:", err)
		}
	})
	mux.HandleFunc("GET /report", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		rep := v.Report()
		writeJSON(w, v, map[string]any{
			"title":   rep.Title,
			"summary": rep.Summarise(),
			"lines":   rep.Lines,
		})
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, v, map[string]any{
			"origin":      v.Origin(),
			"run":         v.Stats(),
			"runStages":   stagesMS(v.Stats().Stages),
			"react":       v.React(),
			"reactStages": stagesMS(v.React().Stages),
		})
	})
	mux.HandleFunc("GET /sources", func(w http.ResponseWriter, r *http.Request) {
		v, ok := viewFor(s, w, r)
		if !ok {
			return
		}
		writeJSON(w, v, map[string]any{
			"selected": v.Selected(),
			"trust":    v.Trust(),
			"sources":  v.Sources(),
		})
	})

	// The background write loop: evolve the synthetic world and refresh
	// one source per tick (round-robin), so readers watch versions advance
	// while each reaction stays cheap.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		ticker := time.NewTicker(every)
		defer ticker.Stop()
		tick := 0
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			u.World.Evolve(churn)
			ids := s.SelectedSources()
			if len(ids) == 0 {
				continue
			}
			id := ids[tick%len(ids)]
			tick++
			if _, err := s.Refresh(ctx, id); err != nil && ctx.Err() == nil {
				fmt.Fprintln(os.Stderr, "wrangle: background refresh:", err)
			}
		}
	}()

	server := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- server.Serve(ln) }()

	select {
	case err := <-serveErr:
		stop()
		wg.Wait()
		return err
	case <-ctx.Done():
	}
	fmt.Println("\nshutting down…")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = server.Shutdown(shutdownCtx)
	wg.Wait()
	if v, verr := s.View(); verr == nil {
		fmt.Printf("served up to version %d (%d entities)\n", v.Version(), v.Table().Len())
	}
	return err
}

// viewFor resolves the request's view: the latest committed version, or
// the pinned one named by ?version=N. It writes the HTTP error itself and
// reports ok=false when there is nothing to serve.
func viewFor(s *wrangle.Session, w http.ResponseWriter, r *http.Request) (*wrangle.View, bool) {
	v, err := s.View()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return nil, false
	}
	if q := r.URL.Query().Get("version"); q != "" {
		n, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			http.Error(w, "bad version: "+q, http.StatusBadRequest)
			return nil, false
		}
		if v, err = v.At(n); err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return nil, false
		}
	}
	return v, true
}

// writeJSON renders a response stamped with the view's version header.
func writeJSON(w http.ResponseWriter, v *wrangle.View, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Wrangle-Version", strconv.FormatUint(v.Version(), 10))
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(body); err != nil {
		fmt.Fprintln(os.Stderr, "wrangle: write response:", err)
	}
}

// stagesMS renders a stage-timing map in milliseconds for readability
// (raw time.Duration marshals as opaque nanoseconds).
func stagesMS(stages map[string]time.Duration) map[string]float64 {
	if len(stages) == 0 {
		return nil
	}
	out := make(map[string]float64, len(stages))
	for k, d := range stages {
		out[k] = float64(d.Microseconds()) / 1000
	}
	return out
}
