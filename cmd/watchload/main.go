// Command watchload is the change-feed load harness: it stands up a
// synthetic wrangling session, subscribes N concurrent watchers through
// Session.Watch, and drives continuous churn — alternating source
// refreshes and value feedback — for a fixed duration, measuring what the
// subscribers actually observe:
//
//   - publish-to-delivery latency (p50/p95/p99) across every delivery,
//   - bytes per subscriber, serialised the way /watch frames are
//     (changed records only; shared pages elided),
//   - stream integrity: every watcher's feed must be gapless and
//     strictly monotonic until it ends or is explicitly evicted,
//   - eviction count: slow consumers must be cut loose deterministically
//     rather than ever blocking a publish.
//
// Usage:
//
//	watchload [-subscribers N] [-duration d] [-seed N] [-sources N]
//	          [-shards N] [-buffer N] [-retain N] [-churn f] [-smoke]
//	          [-metrics-dump]
//
// -smoke runs the CI configuration (100 subscribers, 5s) and exits
// non-zero if any stream gapped, nobody received anything, or a draining
// subscriber was evicted — the wired-into-make loadtest gate.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/wrangle"
	"repro/wrangle/synth"
)

func main() {
	subscribers := flag.Int("subscribers", 1000, "concurrent watch subscribers")
	duration := flag.Duration("duration", 30*time.Second, "how long to drive churn")
	seed := flag.Int64("seed", 1, "deterministic seed")
	nSources := flag.Int("sources", 8, "synthetic sources")
	shards := flag.Int("shards", 4, "integration shards (delta publication)")
	buffer := flag.Int("buffer", 64, "per-subscriber watch buffer")
	retain := flag.Int("retain", 8, "snapshot versions to retain")
	churn := flag.Float64("churn", 0.05, "world churn per refresh tick")
	smoke := flag.Bool("smoke", false, "CI smoke: 100 subscribers for 5s, strict exit code")
	stateDir := flag.String("state", "", "durable state directory: log committed versions and write a fingerprint sidecar per publish")
	verifyState := flag.Bool("verify-state", false, "crash-recovery check: reopen -state, compare against the sidecar, strict exit")
	metricsDump := flag.Bool("metrics-dump", false, "enable session telemetry and print the final registry scrape (Prometheus text format)")
	flag.Parse()
	if *smoke {
		*subscribers, *duration = 100, 5*time.Second
	}
	if *verifyState {
		if *stateDir == "" {
			fmt.Fprintln(os.Stderr, "watchload: -verify-state requires -state")
			os.Exit(2)
		}
		if err := verify(*stateDir, *seed, *nSources, *shards, *buffer, *retain); err != nil {
			fmt.Fprintln(os.Stderr, "watchload: verify:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*subscribers, *duration, *seed, *nSources, *shards, *buffer, *retain, *churn, *smoke, *stateDir, *metricsDump); err != nil {
		fmt.Fprintln(os.Stderr, "watchload:", err)
		os.Exit(1)
	}
}

// subscriberStats is what one watcher observed over its stream.
type subscriberStats struct {
	delivered int
	gaps      int
	evicted   bool
	lastSeen  uint64
}

func run(subscribers int, duration time.Duration, seed int64, nSources, shards, buffer, retain int, churn float64, strict bool, stateDir string, metricsDump bool) error {
	world := synth.NewWorld(seed, 200, 0)
	for i := 0; i < 12; i++ {
		world.Evolve(0.15)
	}
	u := synth.Generate(world, synth.DefaultConfig(seed, nSources))
	opts := []wrangle.Option{
		wrangle.WithProvider(u),
		wrangle.WithIntegrationShards(shards),
		wrangle.WithStreamingRefresh(),
		wrangle.WithRetainVersions(retain),
		wrangle.WithWatchBuffer(buffer),
	}
	if stateDir != "" {
		opts = append(opts, wrangle.WithDurableLog(stateDir))
	}
	if metricsDump {
		opts = append(opts, wrangle.WithMetrics())
	}
	s, err := wrangle.New(opts...)
	if err != nil {
		return err
	}
	defer s.Close()
	// Delivery latency accumulates into one shared fixed-bucket histogram
	// (allocation-free on the delivery path); with -metrics-dump it is
	// registered on the session registry so the final scrape includes it.
	latency := wrangle.NewHistogram(wrangle.DurationBuckets())
	if reg := s.Metrics(); reg != nil {
		latency = reg.Histogram("watchload_delivery_seconds", wrangle.DurationBuckets())
		reg.Help("watchload_delivery_seconds", "Publish-to-delivery latency observed by load subscribers.")
	}
	start := time.Now()
	if s.Restored() {
		fmt.Printf("warm restart from %s\n", stateDir)
	} else if _, err := s.Run(context.Background()); err != nil {
		return err
	}
	first, err := s.View()
	if err != nil {
		return err
	}
	fmt.Printf("session up in %s: %d sources, %d shards, %d rows, retain %d, buffer %d\n",
		time.Since(start).Round(time.Millisecond), nSources, shards, first.Table().Len(), retain, buffer)

	// Subscribers: each drains its own feed, asserting order and
	// measuring publish→delivery latency from the version's commit stamp.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	stats := make([]subscriberStats, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		ch, cancel, err := s.Watch(ctx, first.Version())
		if err != nil {
			return fmt.Errorf("subscriber %d: %w", i, err)
		}
		wg.Add(1)
		go func(st *subscriberStats, ch <-chan wrangle.Change, cancel wrangle.CancelFunc) {
			defer wg.Done()
			defer cancel()
			last := first.Version()
			for c := range ch {
				if c.Evicted {
					st.evicted = true
					return
				}
				if c.Version() != last+1 {
					st.gaps++
				}
				last = c.Version()
				st.lastSeen = last
				st.delivered++
				latency.Observe(time.Since(c.View.PublishedAt()).Seconds())
			}
		}(&stats[i], ch, cancel)
	}

	// The meter: one extra subscription that serialises every version's
	// frame the way /watch does — changed records inlined, shared pages
	// elided — so bytes/subscriber reflects the wire, not the table.
	var frameBytes atomic.Int64
	meterCh, meterCancel, err := s.Watch(ctx, first.Version())
	if err != nil {
		return err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer meterCancel()
		for c := range meterCh {
			if c.Evicted {
				return
			}
			frameBytes.Add(int64(frameSize(c)))
		}
	}()

	// The writer: churn the world and alternate refresh (one source,
	// round-robin) with value feedback, as fast as reactions complete.
	deadline := time.Now().Add(duration)
	publishes, feedbacks := 0, 0
	ids := s.SelectedSources()
	rep := s.Report("load", "price")
	var lines []wrangle.ReportLine
	for _, l := range rep.Lines {
		if len(l.Supporters) > 0 {
			lines = append(lines, l)
		}
	}
	for tick := 0; time.Now().Before(deadline); tick++ {
		if tick%4 == 3 && len(lines) > 0 {
			l := lines[tick%len(lines)]
			if _, err := s.ApplyFeedback(ctx, wrangle.Feedback{
				Kind: wrangle.ValueIncorrect, SourceID: l.Supporters[0],
				Entity: l.Entity, Attribute: l.Attribute, Cost: 0.1,
			}); err != nil {
				return fmt.Errorf("feedback reaction: %w", err)
			}
			feedbacks++
		} else {
			u.World.Evolve(churn)
			if _, err := s.Refresh(ctx, ids[tick%len(ids)]); err != nil {
				return fmt.Errorf("refresh reaction: %w", err)
			}
		}
		publishes++
		if stateDir != "" {
			// The sidecar records what a subscriber could have observed:
			// (version, table hash) after every publish, renamed into place
			// atomically so a SIGKILL never leaves a torn fingerprint. The
			// crash-recovery gate replays the log and compares against it.
			if v, err := s.View(); err == nil {
				if err := writeSidecar(stateDir, v); err != nil {
					return fmt.Errorf("sidecar: %w", err)
				}
			}
		}
	}
	elapsed := time.Since(deadline.Add(-duration))

	// Let live streams drain the tail, then detach everyone.
	time.Sleep(200 * time.Millisecond)
	stop()
	wg.Wait()

	final, _ := s.View()
	delivered, gaps, evictions, caughtUp := 0, 0, 0, 0
	for i := range stats {
		delivered += stats[i].delivered
		gaps += stats[i].gaps
		if stats[i].evicted {
			evictions++
		}
		if stats[i].lastSeen == final.Version() {
			caughtUp++
		}
	}
	p50, p95, p99 := latency.Quantile(0.50), latency.Quantile(0.95), latency.Quantile(0.99)

	fmt.Printf("\n%d reactions in %s (%d refresh, %d feedback) → versions %d..%d\n",
		publishes, elapsed.Round(time.Millisecond), publishes-feedbacks, feedbacks, first.Version()+1, final.Version())
	fmt.Printf("subscribers: %d   delivered: %d events (%.0f/s)   caught up at end: %d\n",
		subscribers, delivered, float64(delivered)/elapsed.Seconds(), caughtUp)
	fmt.Printf("latency: p50 %.1fms  p95 %.1fms  p99 %.1fms  (histogram estimate over %d deliveries)\n",
		p50*1000, p95*1000, p99*1000, latency.Count())
	fmt.Printf("bytes/subscriber: %s over %d versions (delta frames; shared pages elided)\n",
		sizeof(frameBytes.Load()), final.Version()-first.Version())
	fmt.Printf("gaps: %d   evictions: %d   watchers left: %d\n", gaps, evictions, s.Watchers())

	// Machine-readable tail line for harnesses scraping the run.
	summary, _ := json.Marshal(map[string]any{
		"subscribers": subscribers, "publishes": publishes, "delivered": delivered,
		"p50_us": p50 * 1e6, "p95_us": p95 * 1e6, "p99_us": p99 * 1e6,
		"bytesPerSubscriber": frameBytes.Load(), "gaps": gaps, "evictions": evictions,
	})
	fmt.Printf("summary: %s\n", summary)

	if reg := s.Metrics(); reg != nil {
		fmt.Println("\n-- metrics dump --")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			return err
		}
	}

	if gaps > 0 {
		return fmt.Errorf("%d subscribers observed gapped streams", gaps)
	}
	if leftover := s.Watchers(); leftover != 0 {
		return fmt.Errorf("%d watchers leaked after cancellation", leftover)
	}
	if strict {
		if publishes < 2 || delivered == 0 {
			return fmt.Errorf("smoke made no progress (%d publishes, %d deliveries)", publishes, delivered)
		}
		if evictions > 0 {
			return fmt.Errorf("smoke evicted %d draining subscribers", evictions)
		}
	}
	return nil
}

// frameSize measures one change as a /watch-shaped frame: the changed
// records' rows (all rows when the change is Full) plus the metadata.
func frameSize(c wrangle.Change) int {
	t, ents := c.View.Table(), c.View.Entities()
	names := t.Schema().Names()
	rows := map[string]map[string]any{}
	add := func(i int, e string) {
		o := make(map[string]any, len(names))
		for j, val := range t.Row(i) {
			if val.IsNull() {
				continue
			}
			switch val.Kind() {
			case wrangle.KindInt:
				o[names[j]] = val.IntVal()
			case wrangle.KindFloat:
				o[names[j]] = val.FloatVal()
			case wrangle.KindBool:
				o[names[j]] = val.BoolVal()
			default:
				o[names[j]] = val.String()
			}
		}
		rows[e] = o
	}
	if c.Changes.Full {
		for i, e := range ents {
			add(i, e)
		}
	} else {
		for _, e := range c.Changes.ChangedRecords {
			if i := sort.SearchStrings(ents, e); i < len(ents) && ents[i] == e {
				add(i, e)
			}
		}
	}
	payload, _ := json.Marshal(map[string]any{
		"version": c.Version(), "full": c.Changes.Full,
		"changedShards": c.Changes.ChangedShards, "changedPages": c.Changes.ChangedPages,
		"sharedPages": c.Changes.SharedPages, "removedRecords": c.Changes.RemovedRecords,
		"rows": rows,
	})
	return len(payload)
}

// sidecar is the per-publish fingerprint the churn loop drops next to the
// durable log: the last published version and a hash of its table. It is
// what the pre-crash process provably committed, so the recovery check
// has ground truth that does not depend on replaying the log it audits.
type sidecar struct {
	Seq  uint64 `json:"seq"`
	Hash string `json:"hash"`
}

// writeSidecar writes {seq, hash} for the view atomically (tmp + rename):
// a SIGKILL at any instant leaves either the old fingerprint or the new
// one, never a torn file.
func writeSidecar(dir string, v *wrangle.View) error {
	buf, err := json.Marshal(sidecar{Seq: v.Version(), Hash: viewHash(v)})
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, "fingerprint.tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "fingerprint.txt"))
}

// viewHash digests a version's table, row order and entity index — the
// reader-visible state a restart must reproduce exactly.
func viewHash(v *wrangle.View) string {
	h := fnv.New64a()
	t := v.Table()
	io.WriteString(h, t.Schema().String())
	for i := 0; i < t.Len(); i++ {
		for _, val := range t.Row(i) {
			io.WriteString(h, val.Key())
			io.WriteString(h, "|")
		}
		io.WriteString(h, "\n")
	}
	for _, e := range v.Entities() {
		io.WriteString(h, e)
		io.WriteString(h, ",")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// verify is the crash-recovery gate: reopen the state directory a killed
// churn run left behind and hold it against the sidecar. Strict failures:
// nothing restored, the log replayed to an older version than the sidecar
// proves was committed (lost write), or the restored version's hash
// diverges from what the pre-crash process served (corrupted replay). A
// restored version newer than the sidecar is fine — the crash landed
// between a publish and its sidecar rename — but then the sidecar's own
// version, if still retained, must hash identically. Ends with one live
// reaction, proving the warm session can keep publishing.
func verify(dir string, seed int64, nSources, shards, buffer, retain int) error {
	world := synth.NewWorld(seed, 200, 0)
	for i := 0; i < 12; i++ {
		world.Evolve(0.15)
	}
	u := synth.Generate(world, synth.DefaultConfig(seed, nSources))
	s, err := wrangle.New(
		wrangle.WithProvider(u),
		wrangle.WithIntegrationShards(shards),
		wrangle.WithStreamingRefresh(),
		wrangle.WithRetainVersions(retain),
		wrangle.WithWatchBuffer(buffer),
		wrangle.WithDurableLog(dir),
	)
	if err != nil {
		return err
	}
	defer s.Close()
	if !s.Restored() {
		return fmt.Errorf("state %s did not restore a session (no committed versions replayed)", dir)
	}
	v, err := s.View()
	if err != nil {
		return err
	}
	fmt.Printf("restored to version %d (%d rows)\n", v.Version(), v.Table().Len())

	buf, err := os.ReadFile(filepath.Join(dir, "fingerprint.txt"))
	switch {
	case errors.Is(err, os.ErrNotExist):
		fmt.Println("no fingerprint sidecar (killed before the first publish); restore alone verified")
	case err != nil:
		return err
	default:
		var sc sidecar
		if err := json.Unmarshal(buf, &sc); err != nil {
			return fmt.Errorf("sidecar: %w", err)
		}
		switch {
		case v.Version() < sc.Seq:
			return fmt.Errorf("replay lost committed versions: restored to %d, pre-crash process published %d", v.Version(), sc.Seq)
		case v.Version() == sc.Seq:
			if got := viewHash(v); got != sc.Hash {
				return fmt.Errorf("version %d diverged after restore: hash %s, pre-crash %s", sc.Seq, got, sc.Hash)
			}
			fmt.Printf("version %d hash matches the pre-crash sidecar\n", sc.Seq)
		default:
			// The kill landed between a publish and its sidecar rename; the
			// sidecar's version must still hash identically if retained.
			at, err := v.At(sc.Seq)
			if err == nil {
				if got := viewHash(at); got != sc.Hash {
					return fmt.Errorf("retained version %d diverged after restore: hash %s, pre-crash %s", sc.Seq, got, sc.Hash)
				}
				fmt.Printf("restored past the sidecar (%d > %d); retained version still matches\n", v.Version(), sc.Seq)
			} else {
				fmt.Printf("restored past the sidecar (%d > %d); sidecar version already out of retention\n", v.Version(), sc.Seq)
			}
		}
	}

	// The warm session must not just read back — it must keep going.
	ids := s.SelectedSources()
	if len(ids) == 0 {
		return fmt.Errorf("restored session selected no sources")
	}
	stats, err := s.Refresh(context.Background(), ids[0])
	if err != nil {
		return fmt.Errorf("post-restore refresh: %w", err)
	}
	v2, err := s.View()
	if err != nil {
		return err
	}
	fmt.Printf("post-restore refresh published version %d (shards resolved %d, reused %d; trust components %d, recomputed %d)\n",
		v2.Version(), stats.ShardsResolved, stats.ShardsReused,
		stats.TrustComponents, stats.TrustRecomputed)
	return nil
}

// sizeof renders a byte count human-readably.
func sizeof(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
