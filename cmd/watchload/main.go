// Command watchload is the change-feed load harness: it stands up a
// synthetic wrangling session, subscribes N concurrent watchers through
// Session.Watch, and drives continuous churn — alternating source
// refreshes and value feedback — for a fixed duration, measuring what the
// subscribers actually observe:
//
//   - publish-to-delivery latency (p50/p95/p99) across every delivery,
//   - bytes per subscriber, serialised the way /watch frames are
//     (changed records only; shared pages elided),
//   - stream integrity: every watcher's feed must be gapless and
//     strictly monotonic until it ends or is explicitly evicted,
//   - eviction count: slow consumers must be cut loose deterministically
//     rather than ever blocking a publish.
//
// Usage:
//
//	watchload [-subscribers N] [-duration d] [-seed N] [-sources N]
//	          [-shards N] [-buffer N] [-retain N] [-churn f] [-smoke]
//
// -smoke runs the CI configuration (100 subscribers, 5s) and exits
// non-zero if any stream gapped, nobody received anything, or a draining
// subscriber was evicted — the wired-into-make loadtest gate.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/wrangle"
	"repro/wrangle/synth"
)

func main() {
	subscribers := flag.Int("subscribers", 1000, "concurrent watch subscribers")
	duration := flag.Duration("duration", 30*time.Second, "how long to drive churn")
	seed := flag.Int64("seed", 1, "deterministic seed")
	nSources := flag.Int("sources", 8, "synthetic sources")
	shards := flag.Int("shards", 4, "integration shards (delta publication)")
	buffer := flag.Int("buffer", 64, "per-subscriber watch buffer")
	retain := flag.Int("retain", 8, "snapshot versions to retain")
	churn := flag.Float64("churn", 0.05, "world churn per refresh tick")
	smoke := flag.Bool("smoke", false, "CI smoke: 100 subscribers for 5s, strict exit code")
	flag.Parse()
	if *smoke {
		*subscribers, *duration = 100, 5*time.Second
	}
	if err := run(*subscribers, *duration, *seed, *nSources, *shards, *buffer, *retain, *churn, *smoke); err != nil {
		fmt.Fprintln(os.Stderr, "watchload:", err)
		os.Exit(1)
	}
}

// subscriberStats is what one watcher observed over its stream.
type subscriberStats struct {
	delivered int
	gaps      int
	evicted   bool
	latencyUS []float64
	lastSeen  uint64
}

func run(subscribers int, duration time.Duration, seed int64, nSources, shards, buffer, retain int, churn float64, strict bool) error {
	world := synth.NewWorld(seed, 200, 0)
	for i := 0; i < 12; i++ {
		world.Evolve(0.15)
	}
	u := synth.Generate(world, synth.DefaultConfig(seed, nSources))
	s, err := wrangle.New(
		wrangle.WithProvider(u),
		wrangle.WithIntegrationShards(shards),
		wrangle.WithStreamingRefresh(),
		wrangle.WithRetainVersions(retain),
		wrangle.WithWatchBuffer(buffer),
	)
	if err != nil {
		return err
	}
	start := time.Now()
	if _, err := s.Run(context.Background()); err != nil {
		return err
	}
	first, err := s.View()
	if err != nil {
		return err
	}
	fmt.Printf("session up in %s: %d sources, %d shards, %d rows, retain %d, buffer %d\n",
		time.Since(start).Round(time.Millisecond), nSources, shards, first.Table().Len(), retain, buffer)

	// Subscribers: each drains its own feed, asserting order and
	// measuring publish→delivery latency from the version's commit stamp.
	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	stats := make([]subscriberStats, subscribers)
	var wg sync.WaitGroup
	for i := 0; i < subscribers; i++ {
		ch, cancel, err := s.Watch(ctx, first.Version())
		if err != nil {
			return fmt.Errorf("subscriber %d: %w", i, err)
		}
		wg.Add(1)
		go func(st *subscriberStats, ch <-chan wrangle.Change, cancel wrangle.CancelFunc) {
			defer wg.Done()
			defer cancel()
			last := first.Version()
			for c := range ch {
				if c.Evicted {
					st.evicted = true
					return
				}
				if c.Version() != last+1 {
					st.gaps++
				}
				last = c.Version()
				st.lastSeen = last
				st.delivered++
				st.latencyUS = append(st.latencyUS, float64(time.Since(c.View.PublishedAt()).Microseconds()))
			}
		}(&stats[i], ch, cancel)
	}

	// The meter: one extra subscription that serialises every version's
	// frame the way /watch does — changed records inlined, shared pages
	// elided — so bytes/subscriber reflects the wire, not the table.
	var frameBytes atomic.Int64
	meterCh, meterCancel, err := s.Watch(ctx, first.Version())
	if err != nil {
		return err
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer meterCancel()
		for c := range meterCh {
			if c.Evicted {
				return
			}
			frameBytes.Add(int64(frameSize(c)))
		}
	}()

	// The writer: churn the world and alternate refresh (one source,
	// round-robin) with value feedback, as fast as reactions complete.
	deadline := time.Now().Add(duration)
	publishes, feedbacks := 0, 0
	ids := s.SelectedSources()
	rep := s.Report("load", "price")
	var lines []wrangle.ReportLine
	for _, l := range rep.Lines {
		if len(l.Supporters) > 0 {
			lines = append(lines, l)
		}
	}
	for tick := 0; time.Now().Before(deadline); tick++ {
		if tick%4 == 3 && len(lines) > 0 {
			l := lines[tick%len(lines)]
			if _, err := s.ApplyFeedback(ctx, wrangle.Feedback{
				Kind: wrangle.ValueIncorrect, SourceID: l.Supporters[0],
				Entity: l.Entity, Attribute: l.Attribute, Cost: 0.1,
			}); err != nil {
				return fmt.Errorf("feedback reaction: %w", err)
			}
			feedbacks++
		} else {
			u.World.Evolve(churn)
			if _, err := s.Refresh(ctx, ids[tick%len(ids)]); err != nil {
				return fmt.Errorf("refresh reaction: %w", err)
			}
		}
		publishes++
	}
	elapsed := time.Since(deadline.Add(-duration))

	// Let live streams drain the tail, then detach everyone.
	time.Sleep(200 * time.Millisecond)
	stop()
	wg.Wait()

	final, _ := s.View()
	delivered, gaps, evictions, caughtUp := 0, 0, 0, 0
	var all []float64
	for i := range stats {
		delivered += stats[i].delivered
		gaps += stats[i].gaps
		if stats[i].evicted {
			evictions++
		}
		if stats[i].lastSeen == final.Version() {
			caughtUp++
		}
		all = append(all, stats[i].latencyUS...)
	}

	fmt.Printf("\n%d reactions in %s (%d refresh, %d feedback) → versions %d..%d\n",
		publishes, elapsed.Round(time.Millisecond), publishes-feedbacks, feedbacks, first.Version()+1, final.Version())
	fmt.Printf("subscribers: %d   delivered: %d events (%.0f/s)   caught up at end: %d\n",
		subscribers, delivered, float64(delivered)/elapsed.Seconds(), caughtUp)
	fmt.Printf("latency: p50 %.1fms  p95 %.1fms  p99 %.1fms\n",
		quantile(all, 0.50)/1000, quantile(all, 0.95)/1000, quantile(all, 0.99)/1000)
	fmt.Printf("bytes/subscriber: %s over %d versions (delta frames; shared pages elided)\n",
		sizeof(frameBytes.Load()), final.Version()-first.Version())
	fmt.Printf("gaps: %d   evictions: %d   watchers left: %d\n", gaps, evictions, s.Watchers())

	// Machine-readable tail line for harnesses scraping the run.
	summary, _ := json.Marshal(map[string]any{
		"subscribers": subscribers, "publishes": publishes, "delivered": delivered,
		"p50_us": quantile(all, 0.50), "p95_us": quantile(all, 0.95), "p99_us": quantile(all, 0.99),
		"bytesPerSubscriber": frameBytes.Load(), "gaps": gaps, "evictions": evictions,
	})
	fmt.Printf("summary: %s\n", summary)

	if gaps > 0 {
		return fmt.Errorf("%d subscribers observed gapped streams", gaps)
	}
	if leftover := s.Watchers(); leftover != 0 {
		return fmt.Errorf("%d watchers leaked after cancellation", leftover)
	}
	if strict {
		if publishes < 2 || delivered == 0 {
			return fmt.Errorf("smoke made no progress (%d publishes, %d deliveries)", publishes, delivered)
		}
		if evictions > 0 {
			return fmt.Errorf("smoke evicted %d draining subscribers", evictions)
		}
	}
	return nil
}

// frameSize measures one change as a /watch-shaped frame: the changed
// records' rows (all rows when the change is Full) plus the metadata.
func frameSize(c wrangle.Change) int {
	t, ents := c.View.Table(), c.View.Entities()
	names := t.Schema().Names()
	rows := map[string]map[string]any{}
	add := func(i int, e string) {
		o := make(map[string]any, len(names))
		for j, val := range t.Row(i) {
			if val.IsNull() {
				continue
			}
			switch val.Kind() {
			case wrangle.KindInt:
				o[names[j]] = val.IntVal()
			case wrangle.KindFloat:
				o[names[j]] = val.FloatVal()
			case wrangle.KindBool:
				o[names[j]] = val.BoolVal()
			default:
				o[names[j]] = val.String()
			}
		}
		rows[e] = o
	}
	if c.Changes.Full {
		for i, e := range ents {
			add(i, e)
		}
	} else {
		for _, e := range c.Changes.ChangedRecords {
			if i := sort.SearchStrings(ents, e); i < len(ents) && ents[i] == e {
				add(i, e)
			}
		}
	}
	payload, _ := json.Marshal(map[string]any{
		"version": c.Version(), "full": c.Changes.Full,
		"changedShards": c.Changes.ChangedShards, "changedPages": c.Changes.ChangedPages,
		"sharedPages": c.Changes.SharedPages, "removedRecords": c.Changes.RemovedRecords,
		"rows": rows,
	})
	return len(payload)
}

// quantile returns the q-th quantile (nearest rank) of xs; 0 when empty.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[int(q*float64(len(s)-1))]
}

// sizeof renders a byte count human-readably.
func sizeof(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
