// Command experiments runs every experiment in the reproduction's
// experiment index (see README.md and the repro/wrangle/experiments docs)
// and prints the paper-style tables.
//
// Usage:
//
//	experiments [-seed N] [-quick] [-only E5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/wrangle/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "deterministic seed for all workloads")
	quick := flag.Bool("quick", false, "smaller workloads (CI-sized)")
	only := flag.String("only", "", "comma-separated experiment ids (e.g. E1,E8)")
	flag.Parse()

	nSources := 30
	e6sizes := []int{10000, 100000, 1000000}
	if *quick {
		nSources = 10
		e6sizes = []int{1000, 10000, 100000}
	}
	want := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		id = strings.TrimSpace(strings.ToUpper(id))
		if id != "" {
			want[id] = true
		}
	}
	run := func(id string, fn func() experiments.Table) {
		if len(want) > 0 && !want[id] {
			return
		}
		t := fn()
		fmt.Println(t.Format())
	}

	run("E1", func() experiments.Table { t, _ := experiments.E1ManualVsAutomated(*seed, nSources+20); return t })
	run("E2", func() experiments.Table { t, _ := experiments.E2UserContexts(*seed, nSources/2+8); return t })
	run("E3", func() experiments.Table { t, _ := experiments.E3ContextExtraction(*seed, 10); return t })
	run("E4", func() experiments.Table { t, _ := experiments.E4EvidenceTypes(*seed, nSources/2); return t })
	run("E5", func() experiments.Table { t, _ := experiments.E5PayAsYouGo(*seed, 10, 4, 25); return t })
	run("E5B", func() experiments.Table { t, _ := experiments.E5bSharedVsSiloed(*seed, 10); return t })
	run("E6", func() experiments.Table { t, _ := experiments.E6BoundedEvaluation(e6sizes); return t })
	run("E7", func() experiments.Table { t, _ := experiments.E7CQApproximation(*seed, 80, 800); return t })
	run("E8", func() experiments.Table { t, _ := experiments.E8KBCvsWrangler(*seed, 20); return t })
	run("E9", func() experiments.Table { t, _ := experiments.E9Uncertainty(*seed, 500, 7); return t })
	run("E10", func() experiments.Table { t, _ := experiments.E10Incremental(*seed, 10, 3); return t })
	run("F1", func() experiments.Table { t, _ := experiments.F1Architecture(*seed, 12); return t })

	if len(want) > 0 {
		for id := range want {
			switch id {
			case "E1", "E2", "E3", "E4", "E5", "E5B", "E6", "E7", "E8", "E9", "E10", "F1":
			default:
				fmt.Fprintf(os.Stderr, "unknown experiment %s\n", id)
				os.Exit(2)
			}
		}
	}
}
