// Quickstart: wrangle five heterogeneous product sources into one clean
// table in ~30 lines. This is the smallest end-to-end use of the library:
// generate a universe (in production you would point the extractors at
// real payloads), build a wrangler with default contexts, run, read.
package main

import (
	"fmt"
	"log"

	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/ontology"
	"repro/internal/sources"
)

func main() {
	// A world of 100 products and five imperfect sources derived from it.
	world := sources.NewWorld(42, 100, 0)
	universe := sources.Generate(world, sources.DefaultConfig(42, 5))

	// Default user context (balanced criteria); the built-in product
	// ontology as data context so source schemas align semantically.
	dataCtx := context.NewDataContext().WithTaxonomy(ontology.ProductTaxonomy())
	w := core.New(universe, core.ProductConfig(), nil, dataCtx)

	wrangled, err := w.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrangled %d entities from %d sources:\n\n", wrangled.Len(), len(universe.Sources))
	fmt.Println(wrangled.String())

	ev := w.EvaluateProducts()
	fmt.Printf("\nagainst ground truth: precision=%.2f recall=%.2f name-accuracy=%.2f\n",
		ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy)
}
