// Quickstart: wrangle five heterogeneous product sources into one clean
// table through the public API. This is the smallest end-to-end use of
// the library: build a session over a synthetic universe (in production
// you would point it at real payloads via wrangle.FromDir or a custom
// Provider), run, read.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/wrangle"
)

func main() {
	// Five imperfect sources derived from a synthetic product world, the
	// built-in product ontology as data context so source schemas align
	// semantically, and a default (balanced) user context.
	s, err := wrangle.New(
		wrangle.WithDomain(wrangle.Products),
		wrangle.WithSeed(42),
		wrangle.WithSyntheticSources(5),
	)
	if err != nil {
		log.Fatal(err)
	}

	wrangled, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrangled %d entities from %d sources:\n\n",
		wrangled.Len(), len(s.Provider().List()))
	fmt.Println(wrangled.String())

	ev := s.Evaluate()
	fmt.Printf("\nagainst ground truth: precision=%.2f recall=%.2f name-accuracy=%.2f\n",
		ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy)
}
