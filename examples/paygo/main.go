// Paygo plots the pay-as-you-go curve of §2.4: crowd-labelled duplicate
// pairs arrive in batches, entity resolution improves, and each reaction
// recomputes only the integration tail — never the extractions. It also
// contrasts the incremental reaction cost against a full pipeline rerun.
package main

import (
	"fmt"
	"log"

	"repro/wrangle/experiments"
)

func main() {
	table, rows := experiments.E5PayAsYouGo(3, 10, 5, 25)
	fmt.Println(table.Format())

	fmt.Println("feedback vs quality (ASCII curve, ER F1):")
	for _, r := range rows {
		bar := int(r.ERF1 * 50)
		fmt.Printf("batch %d | %4d items | %6.2f cost | %s %.3f\n",
			r.Batch, r.CumulativeFB, r.CumulativeCost, stars(bar), r.ERF1)
	}

	fmt.Println("\nincremental vs full recomputation (E10):")
	t2, e10 := experiments.E10Incremental(3, 10, 2)
	fmt.Println(t2.Format())
	for _, r := range e10 {
		if r.FullSrc == 0 {
			log.Fatal("full rerun touched nothing — harness broken")
		}
		fmt.Printf("%s: incremental touched %d/%d sources (%.0f%% of full work)\n",
			r.Event, r.IncrementalSrc, r.FullSrc, 100*float64(r.IncrementalSrc)/float64(r.FullSrc))
	}
}

func stars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
