// Deepweb demonstrates detail-page extraction (§2.2): instead of a
// listing page, a site publishes one entity per page — the shape of the
// business homepages Example 3 proposes wrapping directly. The wrapper is
// induced from a handful of example pages by aligning fields across
// pages; boilerplate (navigation, footers) is constant across the site
// and is discarded automatically.
package main

import (
	"fmt"
	"log"

	"repro/wrangle"
	"repro/wrangle/extract"
	"repro/wrangle/synth"
)

func main() {
	world := synth.NewWorld(23, 120, 0)
	cfg := synth.DefaultConfig(23, 3)
	cfg.CSVShare, cfg.JSONShare, cfg.HTMLShare = 0, 0, 1
	cfg.CleanShare = 1
	cfg.StaleMax = 0
	universe := synth.Generate(world, cfg)
	site := universe.Sources[0]

	// Render the site: one detail page per product.
	pages := make([]*extract.Node, 0, len(site.Records))
	for i := range site.Records {
		pages = append(pages, extract.Parse(site.Template.RenderDetailPage(site, i)))
	}
	fmt.Printf("site %s publishes %d detail pages\n", site.ID, len(pages))

	// Induce from the first five pages only.
	wrapper, err := extract.InduceDetail(site.ID, pages[:5], wrangle.ProductTaxonomy())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("induced wrapper from 5 example pages: %d fields, confidence %.2f\n",
		len(wrapper.Fields), wrapper.Confidence)
	for _, f := range wrapper.Fields {
		fmt.Printf("  field %-24s -> %s\n", f.Selector, label(f))
	}

	// Extract the whole site.
	table, err := extract.ExtractSite(wrapper, pages)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nextracted %d records from %d pages:\n%s\n", table.Len(), len(pages), table.String())

	// Verify against the generator's ground truth.
	hits, total := 0, 0
	for _, prop := range []string{"sku", "name", "price"} {
		c := table.Schema().Index(prop)
		if c < 0 {
			continue
		}
		for i := 0; i < table.Len(); i++ {
			total++
			if table.Row(i)[c].String() == site.Records[i].Values[prop] {
				hits++
			}
		}
	}
	fmt.Printf("\nfield-level accuracy vs ground truth: %d/%d\n", hits, total)
}

func label(f extract.FieldRule) string {
	if f.Property != "" {
		return f.Property + " (canonical)"
	}
	if f.Header != "" {
		return f.Header + " (source header)"
	}
	return "unlabelled"
}
