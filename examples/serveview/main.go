// Serveview demonstrates the serving layer: concurrent readers pin
// copy-on-write snapshot versions (Session.View) and keep reading at
// full speed while the session reacts to feedback and source churn in
// the background. Every view is internally consistent — its table,
// report, stats and trust all belong to the same committed version —
// and a pinned view never changes, no matter how many reactions land
// after it.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"repro/wrangle"
	"repro/wrangle/synth"
)

func main() {
	ctx := context.Background()
	world := synth.NewWorld(21, 150, 0)
	u := synth.Generate(world, synth.DefaultConfig(21, 8))
	s, err := wrangle.New(
		wrangle.WithProvider(u),
		wrangle.WithRetainVersions(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := s.Run(ctx); err != nil {
		log.Fatal(err)
	}

	v, err := s.View()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v%d (%s): %d entities, stages %v\n",
		v.Version(), v.Origin(), v.Table().Len(), stageNames(v))

	// Readers: pin the latest view in a tight loop and count how many
	// consistent snapshots they observe while the writer churns.
	var reads atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				view, err := s.View()
				if err != nil {
					log.Fatal(err)
				}
				if view.Table().Len() != view.Stats().RowsWrangled {
					log.Fatal("torn view") // cannot happen: versions commit atomically
				}
				reads.Add(1)
			}
		}()
	}

	// The writer: evolve prices in the world and refresh sources, one
	// committed version per reaction.
	for i := 0; i < 6; i++ {
		world.Evolve(0.25)
		if _, err := s.Refresh(ctx, s.SelectedSources()[i%2]); err != nil {
			log.Fatal(err)
		}
		latest, _ := s.View()
		fmt.Printf("v%d (%s): %d entities, retained %v\n",
			latest.Version(), latest.Origin(), latest.Table().Len(), latest.Versions())
		time.Sleep(20 * time.Millisecond)
	}
	close(done)
	wg.Wait()

	// The first view is still pinned to version 1 — even though that
	// version has been pruned from the retention window by now.
	fmt.Printf("\npinned v%d still reads %d entities; %d lock-free reads while %d reactions ran\n",
		v.Version(), v.Table().Len(), reads.Load(), 6)
	if _, err := v.At(1); err != nil {
		fmt.Println("time travel past retention:", err)
	}
}

func stageNames(v *wrangle.View) []string {
	var out []string
	for name := range v.Stats().Stages {
		out = append(out, name)
	}
	return out
}
