// Locations recreates Example 3 of the paper: social-network check-in
// data yields a business-locations database riddled with quality problems
// (wrong geo-coordinates, misspelled and fantasy places). Instead of
// buying a curated database, the wrangler collects location data from the
// businesses' own sites (simulated HTML sources), informed by the
// location ontology, and fuses the conflicting claims.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/wrangle"
	"repro/wrangle/synth"
)

func main() {
	// 300 businesses; 10 sources of mixed quality — think one noisy
	// check-in feed plus directory sites and business homepages.
	world := synth.NewWorld(11, 0, 300)
	cfg := synth.DefaultConfig(11, 10)
	cfg.Domain = synth.DomainLocations
	cfg.Errors.Geo = 0.15  // wrong geo-locations (Example 3)
	cfg.Errors.Typo = 0.12 // misspelled places
	cfg.Errors.Fantasy = 0.04
	universe := synth.Generate(world, cfg)

	s, err := wrangle.New(
		wrangle.WithDomain(wrangle.Locations),
		wrangle.WithProvider(universe),
	)
	if err != nil {
		log.Fatal(err)
	}
	wrangled, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("wrangled %d places from %d sources\n\n", wrangled.Len(), len(universe.Sources))
	preview, err := wrangled.Project("name", "category", "street", "city")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(preview.String())

	ev := s.Evaluate()
	fmt.Printf("\nagainst ground truth: precision=%.2f recall=%.2f street-accuracy=%.2f\n",
		ev.EntityPrecision, ev.EntityRecall, ev.NameAccuracy)
	fmt.Println("\n(street accuracy reflects fusion outvoting per-source typos and geo errors;")
	fmt.Println(" fantasy check-in places lower precision until more sources corroborate)")
}
