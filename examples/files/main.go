// Files wrangles real data from disk — the non-synthetic path. Three
// "shops" publish overlapping product lists in CSV, JSON and
// key-value format under divergent headers (sku vs id vs ref, price vs
// cost vs amount); the pipeline aligns the schemas via the product
// ontology, resolves the overlapping entities and fuses conflicting
// prices. The example then edits one file on disk and calls
// Session.Refresh to show the incremental churn path picking the edit up.
//
// The fixture files are written to a temp directory so the example is
// self-contained; point wrangle.FromDir at any directory of your own
// .csv/.json/.kv/.html files instead.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/wrangle"
)

var fixtures = map[string]string{
	"shop-alpha.csv": "sku,name,brand,price\n" +
		"A-100,Anvil Classic,Acme,19.99\n" +
		"A-200,Rocket Skates,Acme,99.50\n" +
		"A-300,Portable Hole,Wile,149.00\n" +
		"A-500,Tornado Kit,Acme,39.99\n",
	"shop-beta.json": `[` +
		`{"id":"A-100","title":"Anvil Classic","cost":20.49},` +
		`{"id":"A-200","title":"Rocket Skates","cost":95.00},` +
		`{"id":"A-400","title":"Giant Magnet","cost":75.25}]`,
	"shop-gamma.kv": "ref: A-300\nproduct: Portable Hole\namount: 151.00\n\n" +
		"ref: A-400\nproduct: Giant Magnet\namount: 74.99\n",
}

func main() {
	ctx := context.Background()

	dir, err := os.MkdirTemp("", "wrangle-files-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	for name, content := range fixtures {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}

	p, err := wrangle.FromDir(dir)
	if err != nil {
		log.Fatal(err)
	}
	s, err := wrangle.New(
		wrangle.WithDomain(wrangle.Products),
		wrangle.WithProvider(p),
	)
	if err != nil {
		log.Fatal(err)
	}

	table, err := s.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrangled %d entities from %d files:\n\n", table.Len(), len(p.List()))
	preview, err := table.Project("sku", "name", "brand", "price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(preview.String())

	rep := s.Report("prices from disk", "price")
	fmt.Println(rep.Format(10))

	// Velocity on real files: edit shop-alpha's price list on disk and
	// refresh only that source — the rest of the working data is reused.
	// A-500 is published by shop-alpha alone, so its new price flows
	// straight through; the shared entities stay with the fused majority.
	edited := "sku,name,brand,price\n" +
		"A-100,Anvil Classic,Acme,21.99\n" +
		"A-200,Rocket Skates,Acme,89.00\n" +
		"A-300,Portable Hole,Wile,139.00\n" +
		"A-500,Tornado Kit,Acme,29.99\n"
	if err := os.WriteFile(filepath.Join(dir, "shop-alpha.csv"), []byte(edited), 0o644); err != nil {
		log.Fatal(err)
	}
	stats, err := s.Refresh(ctx, "shop-alpha")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refreshed shop-alpha after on-disk edit: re-extracted=%d reclustered=%v refused=%v\n\n",
		stats.SourcesReextracted, stats.Reclustered, stats.Refused)
	preview, err = s.Wrangled().Project("sku", "price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(preview.String())
}
