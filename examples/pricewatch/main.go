// Pricewatch recreates the paper's running example (Examples 1, 2, 4 and
// 5): an e-commerce company watches competitor prices across dozens of
// volatile, messy sources.
//
// It demonstrates:
//   - the 4 V's in the workload (many sources, price churn, mixed formats,
//     injected errors);
//   - two user contexts elicited with AHP — routine price comparison
//     (accuracy + timeliness) vs issue investigation (completeness) — and
//     how they change source selection and output quality (Example 2);
//   - the data context: the company's own catalog as master data plus the
//     product-types ontology (Example 4);
//   - a pay-as-you-go feedback session that downgrades an unreliable
//     source (Example 5).
package main

import (
	"context"
	"fmt"
	"log"

	"repro/wrangle"
	"repro/wrangle/synth"
)

func main() {
	ctx := context.Background()

	// Volume + velocity: 250 products, 18 sources, 36 hours of churn.
	world := synth.NewWorld(7, 250, 0)
	for i := 0; i < 36; i++ {
		world.Evolve(0.12)
	}
	cfg := synth.DefaultConfig(7, 18)
	cfg.StaleMax = 36
	universe := synth.Generate(world, cfg)

	// Data context: master catalog (the company's own data, Example 4).
	// The product ontology is the session's domain default.
	master := wrangle.NewTable(wrangle.MustSchema(
		wrangle.Field{Name: "sku", Kind: wrangle.KindString},
		wrangle.Field{Name: "name", Kind: wrangle.KindString},
		wrangle.Field{Name: "brand", Kind: wrangle.KindString},
		wrangle.Field{Name: "price", Kind: wrangle.KindFloat},
	))
	for i, p := range world.Products {
		if i >= 120 {
			break
		}
		price, _ := world.PriceAt(p.SKU, world.Clock)
		master.AppendValues(wrangle.String(p.SKU), wrangle.String(p.Name),
			wrangle.String(p.Brand), wrangle.Float(price))
	}

	// User context 1 — routine price comparison (Example 2): accuracy and
	// timeliness dominate, small source budget.
	routineAHP, _ := wrangle.NewAHP(wrangle.Accuracy, wrangle.Timeliness, wrangle.Completeness)
	routineAHP.Set(wrangle.Accuracy, wrangle.Completeness, 5)
	routineAHP.Set(wrangle.Timeliness, wrangle.Completeness, 4)
	routineAHP.Set(wrangle.Accuracy, wrangle.Timeliness, 1)

	// User context 2 — issue investigation: completeness first.
	invAHP, _ := wrangle.NewAHP(wrangle.Accuracy, wrangle.Timeliness, wrangle.Completeness)
	invAHP.Set(wrangle.Completeness, wrangle.Accuracy, 5)
	invAHP.Set(wrangle.Completeness, wrangle.Timeliness, 5)

	session := func(name string, ahp *wrangle.AHP, maxSources int) *wrangle.Session {
		s, err := wrangle.New(
			wrangle.WithDomain(wrangle.Products),
			wrangle.WithProvider(universe),
			wrangle.WithMasterData(master, "sku"),
			wrangle.WithAHPWeights(name, ahp),
			wrangle.WithSourceBudget(maxSources),
			// 18 volatile sources are an embarrassingly parallel extract/
			// map workload: fan them out over four workers. The output is
			// byte-identical to a sequential run — only faster.
			wrangle.WithParallelism(4),
		)
		if err != nil {
			log.Fatal(err)
		}
		return s
	}

	for _, sc := range []struct {
		name string
		ahp  *wrangle.AHP
		max  int
	}{
		{"routine price comparison", routineAHP, 6},
		{"issue investigation", invAHP, 0},
	} {
		s := session(sc.name, sc.ahp, sc.max)
		if _, err := s.Run(ctx); err != nil {
			log.Fatal(err)
		}
		ev := s.Evaluate()
		fmt.Printf("context %-28s sources=%-2d entities=%-4d recall=%.2f price-acc=%.2f\n",
			sc.name, len(s.SelectedSources()), ev.Entities, ev.EntityRecall, ev.PriceAccuracy)
	}

	// Pay-as-you-go (Example 5): the analyst reviews a price report, finds
	// values from one source wrong, annotates them; the system downgrades
	// that source's trust and refuses — without re-extracting anything.
	fmt.Println("\n-- pay-as-you-go session (routine context) --")
	s := session("routine price comparison", routineAHP, 6)
	if _, err := s.Run(ctx); err != nil {
		log.Fatal(err)
	}
	before := s.Evaluate()
	suspect := s.SelectedSources()[0]
	var annotations []wrangle.Feedback
	for i := 0; i < 8; i++ {
		annotations = append(annotations, wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: suspect,
			Entity: fmt.Sprintf("SKU-%05d", i), Attribute: "price", Cost: 0.5,
		})
	}
	stats, err := s.ApplyFeedback(ctx, annotations...)
	if err != nil {
		log.Fatal(err)
	}
	after := s.Evaluate()
	fmt.Printf("8 annotations (cost %.1f min): trust[%s]=%.2f, price-acc %.3f -> %.3f\n",
		s.FeedbackSpent(), suspect, s.Trust()[suspect], before.PriceAccuracy, after.PriceAccuracy)
	fmt.Printf("reaction scope: re-extracted=%d reclustered=%v refused=%v (full pipeline untouched)\n",
		stats.SourcesReextracted, stats.Reclustered, stats.Refused)
}
