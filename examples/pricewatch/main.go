// Pricewatch recreates the paper's running example (Examples 1, 2, 4 and
// 5): an e-commerce company watches competitor prices across dozens of
// volatile, messy sources.
//
// It demonstrates:
//   - the 4 V's in the workload (many sources, price churn, mixed formats,
//     injected errors);
//   - two user contexts elicited with AHP — routine price comparison
//     (accuracy + timeliness) vs issue investigation (completeness) — and
//     how they change source selection and output quality (Example 2);
//   - the data context: the company's own catalog as master data plus the
//     product-types ontology (Example 4);
//   - a pay-as-you-go feedback session that downgrades an unreliable
//     source (Example 5).
package main

import (
	"fmt"
	"log"

	"repro/internal/context"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/sources"
)

func main() {
	// Volume + velocity: 250 products, 18 sources, 36 hours of churn.
	world := sources.NewWorld(7, 250, 0)
	for i := 0; i < 36; i++ {
		world.Evolve(0.12)
	}
	cfg := sources.DefaultConfig(7, 18)
	cfg.StaleMax = 36
	universe := sources.Generate(world, cfg)

	// Data context: master catalog (the company's own data) + ontology.
	master := dataset.NewTable(dataset.MustSchema(
		dataset.Field{Name: "sku", Kind: dataset.KindString},
		dataset.Field{Name: "name", Kind: dataset.KindString},
		dataset.Field{Name: "brand", Kind: dataset.KindString},
		dataset.Field{Name: "price", Kind: dataset.KindFloat},
	))
	for i, p := range world.Products {
		if i >= 120 {
			break
		}
		price, _ := world.PriceAt(p.SKU, world.Clock)
		master.AppendValues(dataset.String(p.SKU), dataset.String(p.Name), dataset.String(p.Brand), dataset.Float(price))
	}
	dataCtx := context.NewDataContext().
		WithMaster(master, "sku").
		WithTaxonomy(ontology.ProductTaxonomy())

	// User context 1 — routine price comparison (Example 2): accuracy and
	// timeliness dominate, small source budget.
	routineAHP, _ := context.NewAHP(context.Accuracy, context.Timeliness, context.Completeness)
	routineAHP.Set(context.Accuracy, context.Completeness, 5)
	routineAHP.Set(context.Timeliness, context.Completeness, 4)
	routineAHP.Set(context.Accuracy, context.Timeliness, 1)
	routine, err := context.BuildUserContext("routine price comparison", routineAHP, 6, 0)
	if err != nil {
		log.Fatal(err)
	}

	// User context 2 — issue investigation: completeness first.
	invAHP, _ := context.NewAHP(context.Accuracy, context.Timeliness, context.Completeness)
	invAHP.Set(context.Completeness, context.Accuracy, 5)
	invAHP.Set(context.Completeness, context.Timeliness, 5)
	investigation, err := context.BuildUserContext("issue investigation", invAHP, 0, 0)
	if err != nil {
		log.Fatal(err)
	}

	for _, uc := range []*context.UserContext{routine, investigation} {
		w := core.New(universe, core.ProductConfig(), uc, dataCtx)
		if _, err := w.Run(); err != nil {
			log.Fatal(err)
		}
		ev := w.EvaluateProducts()
		fmt.Printf("context %-28s sources=%-2d entities=%-4d recall=%.2f price-acc=%.2f\n",
			uc.Name, len(w.SelectedSources()), ev.Entities, ev.EntityRecall, ev.PriceAccuracy)
	}

	// Pay-as-you-go (Example 5): the analyst reviews a price report, finds
	// values from one source wrong, annotates them; the system downgrades
	// that source's trust and refuses — without re-extracting anything.
	fmt.Println("\n-- pay-as-you-go session (routine context) --")
	w := core.New(universe, core.ProductConfig(), routine, dataCtx)
	if _, err := w.Run(); err != nil {
		log.Fatal(err)
	}
	before := w.EvaluateProducts()
	suspect := w.SelectedSources()[0]
	for i := 0; i < 8; i++ {
		w.Feedback.Add(feedback.Item{
			Kind: feedback.ValueIncorrect, SourceID: suspect,
			Entity: fmt.Sprintf("SKU-%05d", i), Attribute: "price", Cost: 0.5,
		})
	}
	stats, err := w.ReactToFeedback()
	if err != nil {
		log.Fatal(err)
	}
	after := w.EvaluateProducts()
	fmt.Printf("8 annotations (cost %.1f min): trust[%s]=%.2f, price-acc %.3f -> %.3f\n",
		w.Feedback.Spent(), suspect, w.Trust()[suspect], before.PriceAccuracy, after.PriceAccuracy)
	fmt.Printf("reaction scope: re-extracted=%d reclustered=%v refused=%v (full pipeline untouched)\n",
		stats.SourcesReextracted, stats.Reclustered, stats.Refused)
}
