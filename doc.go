// Package repro is a from-scratch Go reproduction of the system envisioned
// in "Data Wrangling for Big Data: Challenges and Opportunities" (Furche,
// Gottlob, Libkin, Orsi, Paton — EDBT 2016): a highly automated,
// context-aware, pay-as-you-go data wrangling architecture.
//
// The paper is a vision paper; this repository builds the architecture it
// proposes (Figure 1) together with every substrate it depends on and the
// baselines it argues against, plus an experiment harness that tests each
// of the paper's measurable claims.
//
// Start at repro/wrangle — the public facade (sessions, functional
// options, pluggable source providers) and the only supported import
// surface; everything under internal/ is free to churn. Behind the
// facade, internal/engine executes each run as a task DAG on a bounded
// worker pool: per-source extraction chains fan out in parallel
// (WithParallelism / WithSequential) and merge deterministically, so a
// parallel run is byte-identical to a sequential one. The integration
// tail — entity resolution and fusion over the global union — shards by
// blocking key too (WithIntegrationShards): block-connected components
// route whole to deterministic owner shards, resolve and fuse as engine
// tasks, and merge back byte-identically to the sequential tail at any
// shard count, a property pinned by the internal/wrangletest
// determinism harness and its fuzz target. Each successful run and
// reaction then commits an immutable copy-on-write snapshot version
// into internal/serve; Session.View pins the latest version with one
// atomic load, so heavy read traffic is served lock-free and untorn
// while feedback and refresh reactions churn in the background
// (WithRetainVersions bounds the history, cmd/wrangle -serve exposes it
// over HTTP). Sharded sessions publish versions as deltas: a reaction
// that leaves a shard's fused rows unchanged shares that shard's
// records with the predecessor version, making publication O(changed
// shard). On top of the shards, WithStreamingRefresh turns reactions
// into partial tails: the session memoizes its last integrated tail
// and the reaction planner (internal/core) diffs the rebuilt union
// against it — provenance-scoped — re-resolving only dirty components
// (cached pair scores cover the rest), warm-starting the trust
// fixpoint and reusing untouched shards' clusters and fused pages by
// reference, byte-identically to the full recompute; reaction cost
// scales with the change, not the corpus. The trust fixpoint itself is
// partitioned by trust-coupled connected components
// (internal/fusion): sources sharing no chain of claim groups iterate
// independently, so each component converges on its own, fans out
// across the same worker pool, and the warm path adopts untouched
// components' converged trust outright — float-identical at any
// worker count. Source re-acquisition
// overlaps on the same worker pool for providers that opt into the
// sources.ConcurrentProvider contract. WithMetrics threads the
// internal/obs telemetry registry through all of it — stage and task
// histograms, shard reuse, publish deltas, serve reads, watch fan-out,
// WAL activity — rendered as a deterministic Prometheus scrape
// (cmd/wrangle -serve exposes /metrics and, with -pprof, the standard
// profile endpoints; cmd/benchgate gates CI on the committed
// BENCH_*.json perf trajectory). README.md holds the quickstart,
// CLI usage, and the architecture, shard/merge, delta-version and
// streaming dirty-set diagrams, ROADMAP.md the north star and open
// items, and repro/wrangle/experiments the paper-claim experiment
// index that cmd/experiments prints.
//
// The root package holds the benchmark suite (bench_test.go): one
// testing.B benchmark per experiment, regenerating the tables that
// cmd/experiments prints.
package repro
