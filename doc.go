// Package repro is a from-scratch Go reproduction of the system envisioned
// in "Data Wrangling for Big Data: Challenges and Opportunities" (Furche,
// Gottlob, Libkin, Orsi, Paton — EDBT 2016): a highly automated,
// context-aware, pay-as-you-go data wrangling architecture.
//
// The paper is a vision paper; this repository builds the architecture it
// proposes (Figure 1) together with every substrate it depends on and the
// baselines it argues against, plus an experiment harness that tests each
// of the paper's measurable claims. Start at internal/core (the
// orchestrator), DESIGN.md (system inventory and experiment index) and
// EXPERIMENTS.md (paper-claim vs measured outcome).
//
// The root package holds the benchmark suite (bench_test.go): one
// testing.B benchmark per experiment, regenerating the tables that
// cmd/experiments prints.
package repro
