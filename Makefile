# Mirrors the tier-1 verify command and CI. Plain `go` invocations work
# identically; this is convenience only.

GO ?= go

.PHONY: check build vet test bench

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .
