# Mirrors the tier-1 verify command and CI. Plain `go` invocations work
# identically; this is convenience only.

GO ?= go

.PHONY: check build vet test race bench bench-gate fuzz loadtest

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench prints the experiment benchmark suite (E1-E10, F1), then records
# the engine scaling benchmark (1/2/4/8 workers over a 24-source universe)
# as test2json events in BENCH_PR2.json, the serving-layer read
# throughput (1/4/16 concurrent readers against a mutating session) in
# BENCH_PR3.json, the sharded integration tail (1/2/4/8 blocking
# shards) plus delta-vs-full publication in BENCH_PR4.json, and the
# concurrent source acquisition in BENCH_PR5.json, and the
# change-feed fan-out (1/64/1024 subscribers, full vs delta frames, with
# p50/p95/p99 delivery latency and frame bytes) in BENCH_PR6.json, and
# the durable-log cold-vs-warm start (full pipeline run vs log replay +
# first one-source reaction over a 24-source universe) in
# BENCH_PR7.json, and the telemetry overhead (disabled-vs-enabled
# metrics on the hot read path, plus /metrics scrape cost under
# concurrent writes) in BENCH_PR8.json, and the allocation-squeeze
# headline — one full integration tail (sequential and 1/4/8 shards)
# plus the streaming refresh it subsumed from the PR5 line — in
# BENCH_PR9.json, and the component-partitioned trust fixpoint (cold +
# warm at 1/2/4/8 workers over an 8-component universe) in
# BENCH_PR10.json — the PR-over-PR perf trajectory. The patterns are
# disjoint so nothing runs twice. Each
# BENCH file is benchstat-comparable: `go run ./cmd/benchgate -dump
# BENCH_PR3.json > old.txt` converts the test2json stream to the plain
# text benchstat consumes.
bench:
	$(GO) test -bench='^Benchmark(E[0-9]|F1)' -benchmem -run=^$$ .
	$(GO) test -bench=BenchmarkEngineParallelSources -benchmem -run=^$$ -json . > BENCH_PR2.json
	$(GO) test -bench=BenchmarkServeReads -benchmem -run=^$$ -json . > BENCH_PR3.json
	$(GO) test -bench='^Benchmark(ShardedIntegration|DeltaPublish)$$' -benchmem -run=^$$ -json . > BENCH_PR4.json
	$(GO) test -bench=BenchmarkConcurrentAcquire -benchmem -run=^$$ -json . > BENCH_PR5.json
	$(GO) test -bench=BenchmarkWatchFanout -benchmem -run=^$$ -json . > BENCH_PR6.json
	$(GO) test -bench=BenchmarkColdVsWarmStart -benchmem -run=^$$ -json . > BENCH_PR7.json
	$(GO) test -bench='^Benchmark(MetricsOverhead|RegistryScrape)$$' -benchmem -run=^$$ -json . > BENCH_PR8.json
	$(GO) test -bench='^Benchmark(FullTail|StreamingRefresh)$$' -benchmem -run=^$$ -json . > BENCH_PR9.json
	$(GO) test -bench=BenchmarkTrustFixpoint -benchmem -run=^$$ -json . > BENCH_PR10.json

# bench-gate is the perf-trend gate CI runs: a fresh multi-sample run of
# the serving-layer, telemetry, full-tail and trust-fixpoint benchmarks,
# compared against the committed BENCH_*.json trajectory by cmd/benchgate.
# Fails on a significant regression (slower than baseline × 1.5 on every
# sample, or allocs/op above baseline × 1.15). Profiles land in
# bench.cpu.pprof / bench.mem.pprof for inspection; BENCH_GATE_NEW.json
# is the gate run's own output (fresh samples, not a committed baseline —
# safe to delete, never check it in).
bench-gate:
	$(GO) test -bench='^Benchmark(ServeReads|MetricsOverhead|RegistryScrape|FullTail|TrustFixpoint)$$' -benchmem -count=5 -run=^$$ \
		-cpuprofile bench.cpu.pprof -memprofile bench.mem.pprof -json . > BENCH_GATE_NEW.json
	$(GO) run ./cmd/benchgate -new BENCH_GATE_NEW.json \
		-baseline BENCH_PR3.json -baseline BENCH_PR8.json -baseline BENCH_PR9.json -baseline BENCH_PR10.json \
		-match '^Benchmark(ServeReads|MetricsOverhead|RegistryScrape|FullTail|TrustFixpoint)'

# loadtest drives the change-feed load harness in its CI smoke shape:
# 100 concurrent subscribers against 5 seconds of continuous
# refresh/feedback churn. It exits non-zero if any stream gapped, a
# draining subscriber was evicted, or nothing was delivered. Longer
# local sessions: go run ./cmd/watchload -subscribers 5000 -duration 60s.
loadtest:
	$(GO) run ./cmd/watchload -smoke

# fuzz runs the equivalence fuzzers briefly — the same smokes CI runs:
# the sharded-resolve identity, the end-to-end streaming-refresh
# identity, the change-feed resume property (no duplicate, out-of-order
# or torn deliveries across arbitrary publish/subscribe/drain/cancel
# interleavings), and the WAL replay property (arbitrary bytes never
# panic the reader, corruption is detected, the healed log stays
# appendable). Longer local sessions: go test -fuzz=FuzzSharded
# -fuzztime=5m ./internal/wrangletest (or -fuzz=FuzzStreamingRefresh,
# -fuzz=FuzzWatchResume ./internal/serve, -fuzz=FuzzWALReplay
# ./internal/wal).
fuzz:
	$(GO) test -fuzz=FuzzSharded -fuzztime=10s -run=^$$ ./internal/wrangletest
	$(GO) test -fuzz=FuzzStreamingRefresh -fuzztime=10s -run=^$$ ./internal/wrangletest
	$(GO) test -fuzz=FuzzWatchResume -fuzztime=10s -run=^$$ ./internal/serve
	$(GO) test -fuzz=FuzzWALReplay -fuzztime=10s -run=^$$ ./internal/wal
