# Mirrors the tier-1 verify command and CI. Plain `go` invocations work
# identically; this is convenience only.

GO ?= go

.PHONY: check build vet test race bench fuzz

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench prints the experiment benchmark suite (E1-E10, F1), then records
# the engine scaling benchmark (1/2/4/8 workers over a 24-source universe)
# as test2json events in BENCH_PR2.json, the serving-layer read
# throughput (1/4/16 concurrent readers against a mutating session) in
# BENCH_PR3.json, and the sharded integration tail (1/2/4/8 blocking
# shards) plus delta-vs-full publication in BENCH_PR4.json — the
# PR-over-PR perf trajectory. The patterns are disjoint so nothing runs
# twice.
bench:
	$(GO) test -bench='^Benchmark(E[0-9]|F1)' -benchmem -run=^$$ .
	$(GO) test -bench=BenchmarkEngineParallelSources -benchmem -run=^$$ -json . > BENCH_PR2.json
	$(GO) test -bench=BenchmarkServeReads -benchmem -run=^$$ -json . > BENCH_PR3.json
	$(GO) test -bench='^Benchmark(ShardedIntegration|DeltaPublish)$$' -benchmem -run=^$$ -json . > BENCH_PR4.json

# fuzz runs the sharded-resolve equivalence fuzzer briefly — the same
# smoke CI runs. Longer local sessions: go test -fuzz=FuzzSharded
# -fuzztime=5m ./internal/wrangletest
fuzz:
	$(GO) test -fuzz=FuzzSharded -fuzztime=10s -run=^$$ ./internal/wrangletest
