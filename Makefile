# Mirrors the tier-1 verify command and CI. Plain `go` invocations work
# identically; this is convenience only.

GO ?= go

.PHONY: check build vet test race bench

check: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench prints the experiment benchmark suite (E1-E10, F1), then records
# the engine scaling benchmark (1/2/4/8 workers over a 24-source universe)
# as test2json events in BENCH_PR2.json and the serving-layer read
# throughput (1/4/16 concurrent readers against a mutating session) in
# BENCH_PR3.json — the PR-over-PR perf trajectory. The patterns are
# disjoint so nothing runs twice.
bench:
	$(GO) test -bench='^Benchmark(E[0-9]|F1)' -benchmem -run=^$$ .
	$(GO) test -bench=BenchmarkEngineParallelSources -benchmem -run=^$$ -json . > BENCH_PR2.json
	$(GO) test -bench=BenchmarkServeReads -benchmem -run=^$$ -json . > BENCH_PR3.json
