package wrangle_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/wrangle"
)

func TestOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  wrangle.Option
		want string
	}{
		{"unknown domain", wrangle.WithDomain("astrology"), "unknown domain"},
		{"nil taxonomy", wrangle.WithTaxonomy(nil), "nil taxonomy"},
		{"negative source budget", wrangle.WithSourceBudget(-3), "negative source budget"},
		{"negative feedback budget", wrangle.WithFeedbackBudget(-0.5), "negative feedback budget"},
		{"nil provider", wrangle.WithProvider(nil), "nil provider"},
		{"nil user context", wrangle.WithUserContext(nil), "nil user context"},
		{"nil ahp", wrangle.WithAHPWeights("x", nil), "nil AHP"},
		{"zero synthetic sources", wrangle.WithSyntheticSources(0), "must be positive"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := wrangle.New(tc.opt)
			if err == nil {
				t.Fatalf("New(%s) succeeded, want error containing %q", tc.name, tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want substring %q", err, tc.want)
			}
		})
	}
}

func TestInconsistentAHPRejected(t *testing.T) {
	ahp, err := wrangle.NewAHP(wrangle.Accuracy, wrangle.Timeliness, wrangle.Completeness)
	if err != nil {
		t.Fatal(err)
	}
	// A > T, T > C, but C >> A: circular judgements with high CR.
	ahp.Set(wrangle.Accuracy, wrangle.Timeliness, 9)
	ahp.Set(wrangle.Timeliness, wrangle.Completeness, 9)
	ahp.Set(wrangle.Completeness, wrangle.Accuracy, 9)
	if _, err := wrangle.New(wrangle.WithAHPWeights("circular", ahp)); err == nil {
		t.Fatal("inconsistent AHP judgements should fail New")
	}
}

func TestMasterDataValidation(t *testing.T) {
	master := wrangle.NewTable(wrangle.MustSchema(
		wrangle.Field{Name: "sku", Kind: wrangle.KindString},
		wrangle.Field{Name: "price", Kind: wrangle.KindFloat},
	))
	if _, err := wrangle.New(wrangle.WithMasterData(master, "nope")); err == nil {
		t.Error("master data without the key column should fail")
	}
	if _, err := wrangle.New(wrangle.WithMasterData(nil, "sku")); err == nil {
		t.Error("nil master data should fail")
	}
	if _, err := wrangle.New(wrangle.WithMasterData(master, "sku")); err != nil {
		t.Errorf("valid master data rejected: %v", err)
	}
}

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// fixtureDir lays out a small on-disk workload: two shops publishing
// overlapping products in CSV and JSON under different headers.
func fixtureDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	writeFile(t, dir, "shop-a.csv",
		"sku,name,brand,price\n"+
			"A-100,Acme Anvil,Acme,19.99\n"+
			"A-200,Acme Rocket,Acme,99.50\n")
	writeFile(t, dir, "shop-b.json",
		`[{"id":"A-100","title":"Acme Anvil","cost":20.49},`+
			`{"id":"A-300","title":"Acme Magnet","cost":5.25}]`)
	return dir
}

func TestFileProviderRoundTrip(t *testing.T) {
	p, err := wrangle.FromDir(fixtureDir(t))
	if err != nil {
		t.Fatal(err)
	}
	s, err := wrangle.New(wrangle.WithDomain(wrangle.Products), wrangle.WithProvider(p))
	if err != nil {
		t.Fatal(err)
	}
	table, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	skus := map[string]bool{}
	kc := table.Schema().Index("sku")
	if kc < 0 {
		t.Fatalf("wrangled schema %v has no sku column", table.Schema().Names())
	}
	for _, r := range table.Rows() {
		if !r[kc].IsNull() {
			skus[r[kc].String()] = true
		}
	}
	for _, want := range []string{"A-100", "A-200", "A-300"} {
		if !skus[want] {
			t.Errorf("wrangled output missing entity %s (got %v)", want, skus)
		}
	}
	if table.Len() != 3 {
		t.Errorf("wrangled %d entities, want 3 (A-100 fused across both shops)", table.Len())
	}
	// No synthetic oracle behind files: the evaluation must be zero, not
	// a crash.
	if ev := s.Evaluate(); ev.Entities != 0 {
		t.Errorf("file-backed session evaluated against a ground truth that does not exist: %+v", ev)
	}
}

func TestRefreshPicksUpFileEdits(t *testing.T) {
	dir := fixtureDir(t)
	p, err := wrangle.FromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := wrangle.New(wrangle.WithDomain(wrangle.Products), wrangle.WithProvider(p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	priceOf := func(sku string) float64 {
		t.Helper()
		table := s.Wrangled()
		kc, pc := table.Schema().Index("sku"), table.Schema().Index("price")
		for _, r := range table.Rows() {
			if !r[kc].IsNull() && r[kc].String() == sku {
				return r[pc].FloatVal()
			}
		}
		t.Fatalf("entity %s not wrangled", sku)
		return 0
	}
	before := priceOf("A-200")
	writeFile(t, dir, "shop-a.csv",
		"sku,name,brand,price\n"+
			"A-100,Acme Anvil,Acme,19.99\n"+
			"A-200,Acme Rocket,Acme,149.00\n")
	stats, err := s.Refresh(context.Background(), "shop-a")
	if err != nil {
		t.Fatal(err)
	}
	if stats.SourcesReextracted != 1 {
		t.Errorf("refresh re-extracted %d sources, want 1", stats.SourcesReextracted)
	}
	after := priceOf("A-200")
	if before == after || after != 149.00 {
		t.Errorf("refresh did not propagate the price edit: before=%.2f after=%.2f want 149.00", before, after)
	}
}

func TestFailedRefreshKeepsPreviousData(t *testing.T) {
	dir := fixtureDir(t)
	p, err := wrangle.FromDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := wrangle.New(wrangle.WithDomain(wrangle.Products), wrangle.WithProvider(p))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	before := s.Wrangled().Len()
	// Truncate the file: extraction of the refreshed payload must fail,
	// and the source's previous working data must survive it.
	writeFile(t, dir, "shop-a.csv", "")
	if _, err := s.Refresh(context.Background(), "shop-a"); err == nil {
		t.Fatal("refresh of a truncated CSV should report the extraction error")
	}
	if after := s.Wrangled().Len(); after != before {
		t.Errorf("failed refresh dropped data: %d entities -> %d", before, after)
	}
	kc := s.Wrangled().Schema().Index("sku")
	found := false
	for _, r := range s.Wrangled().Rows() {
		if !r[kc].IsNull() && r[kc].String() == "A-200" {
			found = true
		}
	}
	if !found {
		t.Error("entity A-200 (from the failed source's previous extraction) vanished")
	}
}

func TestRunCancellation(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSeed(7), wrangle.WithSyntheticSources(6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first stage boundary check
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run with cancelled context = %v, want context.Canceled", err)
	}
	// The session recovers: a live context completes the run.
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatalf("Run after cancellation failed: %v", err)
	}
}

func TestLifecycleOrderEnforced(t *testing.T) {
	s, err := wrangle.New()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ApplyFeedback(context.Background()); err == nil {
		t.Error("ApplyFeedback before Run should error")
	}
	if _, err := s.Refresh(context.Background()); err == nil {
		t.Error("Refresh before Run should error")
	}
}

func TestFeedbackBudgetExhaustion(t *testing.T) {
	s, err := wrangle.New(
		wrangle.WithSeed(3),
		wrangle.WithSyntheticSources(5),
		wrangle.WithFeedbackBudget(1.0),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	src := s.SelectedSources()[0]
	items := make([]wrangle.Feedback, 4)
	for i := range items {
		items[i] = wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: src,
			Entity: "SKU-00001", Attribute: "price", Cost: 0.5,
		}
	}
	_, err = s.ApplyFeedback(context.Background(), items...)
	if !errors.Is(err, wrangle.ErrBudgetExhausted) {
		t.Fatalf("ApplyFeedback over budget = %v, want ErrBudgetExhausted", err)
	}
	if rem := s.BudgetRemaining(); rem != 0 {
		t.Errorf("BudgetRemaining = %g, want 0", rem)
	}
}

func TestCancelledFeedbackReactionIsRetried(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSeed(9), wrangle.WithSyntheticSources(5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	item := wrangle.Feedback{
		Kind: wrangle.ValueIncorrect, SourceID: s.SelectedSources()[0],
		Entity: "SKU-00001", Attribute: "price", Cost: 0.5,
	}
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ApplyFeedback(cancelled, item); !errors.Is(err, context.Canceled) {
		t.Fatalf("ApplyFeedback with cancelled context = %v, want context.Canceled", err)
	}
	// The item was recorded but not assimilated; a later reaction must
	// pick it up rather than drop it.
	stats, err := s.ApplyFeedback(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats.FeedbackItems != 1 || !stats.Refused {
		t.Errorf("retry reaction = %+v, want the pending item assimilated (FeedbackItems=1, Refused)", stats)
	}
}

func TestFeedbackLowersTrustAndReport(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSeed(5), wrangle.WithSyntheticSources(6))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	rep := s.Report("prices", "price")
	if len(rep.Lines) == 0 {
		t.Fatal("price report is empty")
	}
	suspect := s.SelectedSources()[0]
	var items []wrangle.Feedback
	for i := 0; i < 5; i++ {
		items = append(items, wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: suspect,
			Entity: rep.Lines[0].Entity, Attribute: "price", Cost: 0.5,
		})
	}
	stats, err := s.ApplyFeedback(context.Background(), items...)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Refused {
		t.Error("value feedback should trigger refusion")
	}
	if tr, ok := s.Trust()[suspect]; !ok || tr >= 0.5 {
		t.Errorf("trust[%s] = %.2f (ok=%v), want < 0.5 after 5 incorrect-value verdicts", suspect, tr, ok)
	}
}
