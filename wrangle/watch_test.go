package wrangle_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/wrangle"
)

// recvChange receives one change with a deadline, so a delivery bug fails
// the test instead of hanging it.
func recvChange(t *testing.T, ch <-chan wrangle.Change) wrangle.Change {
	t.Helper()
	select {
	case c, ok := <-ch:
		if !ok {
			t.Fatal("change feed closed unexpectedly")
		}
		return c
	case <-time.After(30 * time.Second):
		t.Fatal("timed out waiting for a change")
	}
	panic("unreachable")
}

func TestWatchBufferOptionValidation(t *testing.T) {
	if _, err := wrangle.New(wrangle.WithWatchBuffer(0)); err == nil {
		t.Error("WithWatchBuffer(0) should be rejected")
	}
	if _, err := wrangle.New(wrangle.WithWatchBuffer(-3)); err == nil {
		t.Error("WithWatchBuffer(-3) should be rejected")
	}
}

// TestWatchBeforeRun proves a subscriber can attach before anything is
// published and receive the first run as its first event.
func TestWatchBeforeRun(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSeed(2), wrangle.WithSyntheticSources(4))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Watch(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if s.Watchers() != 1 {
		t.Fatalf("Watchers = %d, want 1", s.Watchers())
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	c := recvChange(t, ch)
	if c.Version() != 1 || c.View.Origin() != wrangle.OriginRun {
		t.Fatalf("first change = v%d origin %q, want v1 run", c.Version(), c.View.Origin())
	}
	if !c.Changes.Full {
		t.Error("first publication should be a full change")
	}
	if c.View.Table().Len() == 0 {
		t.Error("change view should pin the published table")
	}
	cancel()
	cancel() // idempotent
	if _, ok := <-ch; ok {
		t.Error("channel should be closed after cancel")
	}
	if s.Watchers() != 0 {
		t.Errorf("Watchers after cancel = %d, want 0", s.Watchers())
	}
}

// TestWatchCatchUpAndCompaction pins the retention boundary the facade
// inherits from the store: fromVersion may reach back exactly to one
// before the oldest retained version; one further is ErrCompacted, and a
// future version is a plain error.
func TestWatchCatchUpAndCompaction(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(6),
		wrangle.WithSyntheticSources(4),
		wrangle.WithRetainVersions(2),
	)
	for i := 0; i < 3; i++ { // versions 2..4; retained [3 4]
		if _, err := s.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}

	// fromVersion 2: needs 3 and 4, both retained — catch-up replays them.
	ch, cancel, err := s.Watch(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if got := recvChange(t, ch).Version(); got != 3 {
		t.Fatalf("catch-up started at v%d, want v3", got)
	}
	if got := recvChange(t, ch).Version(); got != 4 {
		t.Fatalf("catch-up continued at v%d, want v4", got)
	}

	// fromVersion 1: needs the pruned version 2.
	if _, _, err := s.Watch(context.Background(), 1); !errors.Is(err, wrangle.ErrCompacted) {
		t.Fatalf("Watch(1) = %v, want ErrCompacted", err)
	}
	// View.At agrees: the same typed error for the same staleness.
	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.At(2); !errors.Is(err, wrangle.ErrCompacted) {
		t.Fatalf("View.At(2) = %v, want ErrCompacted", err)
	}
	if _, err := v.At(3); err != nil {
		t.Fatalf("View.At(3) = %v, want retained", err)
	}

	// A future version is not compaction.
	if _, _, err := s.Watch(context.Background(), 99); err == nil || errors.Is(err, wrangle.ErrCompacted) {
		t.Fatalf("Watch(99) = %v, want a plain not-yet-published error", err)
	}
}

// TestWatchDeltaContents cross-checks the published ChangeSet against a
// diff the test computes itself from the previous and current versions'
// tables: on a sharded session every record the tables disagree on must
// be listed, nothing else, and page accounting must cover every shard.
func TestWatchDeltaContents(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(5),
		wrangle.WithSyntheticSources(6),
		wrangle.WithIntegrationShards(4),
		wrangle.WithRetainVersions(8),
	)
	prev, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel, err := s.Watch(context.Background(), prev.Version())
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// The same feedback burst view_test uses to force a refusion that
	// actually moves values, then a refresh for a second delta sample.
	rep := s.Report("prices", "price")
	suspect := s.SelectedSources()[0]
	var items []wrangle.Feedback
	for i := 0; i < 5; i++ {
		items = append(items, wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: suspect,
			Entity: rep.Lines[0].Entity, Attribute: "price", Cost: 0.5,
		})
	}
	if _, err := s.ApplyFeedback(context.Background(), items...); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(context.Background(), suspect); err != nil {
		t.Fatal(err)
	}

	base := prev.Version()
	for want := base + 1; want <= base+2; want++ {
		c := recvChange(t, ch)
		if c.Version() != want {
			t.Fatalf("change v%d, want v%d", c.Version(), want)
		}
		cs := c.Changes
		if cs.Full {
			t.Fatalf("v%d: sharded reaction published a Full change set", want)
		}
		// Page accounting covers every shard exactly once.
		if got := cs.ChangedPages + cs.SharedPages; got != 4 {
			t.Errorf("v%d: %d changed + %d shared pages, want 4 total", want, cs.ChangedPages, cs.SharedPages)
		}
		if len(cs.ChangedShards) != cs.ChangedPages {
			t.Errorf("v%d: %d changed shards listed, %d pages counted", want, len(cs.ChangedShards), cs.ChangedPages)
		}
		// Recompute the record delta from the two pinned versions and
		// demand an exact match.
		gotChanged := map[string]bool{}
		for _, e := range cs.ChangedRecords {
			gotChanged[e] = true
		}
		gotRemoved := map[string]bool{}
		for _, e := range cs.RemovedRecords {
			gotRemoved[e] = true
		}
		wantChanged, wantRemoved := diffViews(prev, c.View)
		for e := range wantChanged {
			if !gotChanged[e] {
				t.Errorf("v%d: record %s changed but not listed", want, e)
			}
		}
		for e := range gotChanged {
			if !wantChanged[e] {
				t.Errorf("v%d: record %s listed as changed but identical", want, e)
			}
		}
		for e := range wantRemoved {
			if !gotRemoved[e] {
				t.Errorf("v%d: record %s removed but not listed", want, e)
			}
		}
		for e := range gotRemoved {
			if !wantRemoved[e] {
				t.Errorf("v%d: record %s listed as removed but present", want, e)
			}
		}
		prev = c.View
	}
}

// diffViews recomputes, from two pinned versions, which entities changed
// (new or different row) and which were removed — the ground truth the
// published ChangeSet must match.
func diffViews(prev, cur *wrangle.View) (changed, removed map[string]bool) {
	changed, removed = map[string]bool{}, map[string]bool{}
	prevRows := map[string]wrangle.Record{}
	for i, e := range prev.Entities() {
		prevRows[e] = prev.Table().Rows()[i]
	}
	seen := map[string]bool{}
	for i, e := range cur.Entities() {
		seen[e] = true
		if old, ok := prevRows[e]; !ok || !old.Equal(cur.Table().Rows()[i]) {
			changed[e] = true
		}
	}
	for e := range prevRows {
		if !seen[e] {
			removed[e] = true
		}
	}
	return changed, removed
}

// TestWatchSlowConsumerNeverBlocksReactions subscribes with a one-slot
// buffer and never drains: every reaction must still complete promptly
// (publication never blocks on a watcher), and the stream must end with
// an explicit eviction notice — monotonic seqs, then Evicted, then close.
func TestWatchSlowConsumerNeverBlocksReactions(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(6),
		wrangle.WithSyntheticSources(4),
		wrangle.WithWatchBuffer(1),
		wrangle.WithRetainVersions(8),
	)
	ch, cancel, err := s.Watch(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	// Three refreshes with nobody draining: buffer (1) + the one change
	// the facade holds in flight cannot absorb all of them, so the
	// watcher must be evicted — and each Refresh call must return even
	// though the subscriber is stuck.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 3; i++ {
			if _, err := s.Refresh(context.Background()); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("reactions blocked on an undrained watcher")
	}

	last, evicted := uint64(1), false
	for c := range ch {
		if got := c.Version(); got <= last {
			t.Fatalf("non-monotonic delivery: v%d after v%d", got, last)
		} else {
			last = got
		}
		if c.Evicted {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("undrained watcher was not evicted")
	}
	if _, ok := <-ch; ok {
		t.Error("channel should close right after the eviction notice")
	}
	if s.Watchers() != 0 {
		t.Errorf("Watchers after eviction = %d, want 0", s.Watchers())
	}
}

// TestWatchConcurrentWatchers is the change-feed acceptance test: 16
// subscribers range over their feeds while alternating feedback and
// refresh reactions churn the session. Under -race this proves delivery
// is data-race free; the assertions prove every stream is gapless and
// strictly monotonic — each watcher sees versions 2,3,...,final exactly
// once, in order, with its change summary attached.
func TestWatchConcurrentWatchers(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(7),
		wrangle.WithSyntheticSources(6),
		wrangle.WithIntegrationShards(4),
		wrangle.WithParallelism(2),
		wrangle.WithRetainVersions(3),
		wrangle.WithWatchBuffer(64), // roomy: this test pins gaplessness, not eviction
	)
	first, err := s.View()
	if err != nil {
		t.Fatal(err)
	}

	const (
		watchers  = 16
		reactions = 10
	)
	final := first.Version() + reactions

	var wg sync.WaitGroup
	for i := 0; i < watchers; i++ {
		ch, cancel, err := s.Watch(context.Background(), first.Version())
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, ch <-chan wrangle.Change, cancel wrangle.CancelFunc) {
			defer wg.Done()
			defer cancel()
			next := first.Version() + 1
			for c := range ch {
				if c.Evicted {
					t.Errorf("watcher %d evicted at v%d despite draining", id, c.Version())
					return
				}
				if c.Version() != next {
					t.Errorf("watcher %d: got v%d, want v%d (gap or reorder)", id, c.Version(), next)
					return
				}
				// Consistency of the delivered event: the pinned view is
				// the announced version, and the change summary is the one
				// the version retains.
				if c.View.Version() != c.Version() {
					t.Errorf("watcher %d: view pinned to v%d inside change v%d", id, c.View.Version(), c.Version())
					return
				}
				if c.Changes.Full != c.View.Changes().Full {
					t.Errorf("watcher %d: change summary differs from version's", id)
					return
				}
				next++
				if c.Version() == final {
					return // complete stream observed
				}
			}
			t.Errorf("watcher %d: feed closed at v%d before v%d", id, next-1, final)
		}(i, ch, cancel)
	}

	var lines []wrangle.ReportLine
	for _, l := range first.Report().Lines {
		if len(l.Supporters) > 0 {
			lines = append(lines, l)
		}
	}
	if len(lines) == 0 {
		t.Fatal("no report lines with supporters")
	}
	for i := 0; i < reactions; i++ {
		if i%2 == 0 {
			line := lines[i%len(lines)]
			_, err = s.ApplyFeedback(context.Background(), wrangle.Feedback{
				Kind: wrangle.ValueIncorrect, SourceID: line.Supporters[0],
				Entity: line.Entity, Attribute: line.Attribute, Cost: 0.5,
			})
		} else {
			ids := s.SelectedSources()
			if len(ids) > 2 {
				ids = ids[:2]
			}
			_, err = s.Refresh(context.Background(), ids...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if s.Watchers() != 0 {
		t.Errorf("Watchers after all cancelled = %d, want 0", s.Watchers())
	}
}

// TestWatchContextCancellation proves ctx cancellation detaches the
// subscription and closes the feed without an eviction notice.
func TestWatchContextCancellation(t *testing.T) {
	s := mustRun(t, wrangle.WithSeed(2), wrangle.WithSyntheticSources(4))
	ctx, stop := context.WithCancel(context.Background())
	ch, _, err := s.Watch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := recvChange(t, ch).Version(); got != 1 {
		t.Fatalf("catch-up v%d, want v1", got)
	}
	stop()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case c, ok := <-ch:
			if !ok {
				if n := s.Watchers(); n != 0 {
					t.Fatalf("Watchers after ctx cancel = %d, want 0", n)
				}
				return
			}
			if c.Evicted {
				t.Fatal("ctx cancellation must not deliver an eviction notice")
			}
		case <-deadline:
			t.Fatal("feed did not close after ctx cancellation")
		}
	}
}
