package wrangle

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"sync"

	"repro/internal/core"
	"repro/internal/report"
)

// ErrBudgetExhausted is returned by ApplyFeedback when the user context's
// feedback budget cannot cover every submitted item. Items that fit were
// recorded and assimilated; the rest were dropped.
var ErrBudgetExhausted = errors.New("wrangle: feedback budget exhausted")

// Session is one wrangling lifecycle over a fixed provider and contexts:
// Run, then any number of ApplyFeedback / Refresh reactions, reading
// reports and results in between. Methods are safe for concurrent use.
// Writers (Run, ApplyFeedback, Refresh) serialise on an internal lock —
// the underlying pipeline mutates shared working data — and commit their
// output as an immutable snapshot version. Readers (View, Wrangled,
// Trust, Snapshot) serve from the latest committed version without
// touching that lock, so read traffic never waits for an in-flight
// reaction.
type Session struct {
	mu       sync.Mutex
	w        *core.Wrangler
	domain   Domain
	ran      bool
	restored bool // rehydrated from a durable log holding versions
}

// Run executes the full pipeline — extract every source, match and map to
// the target schema, select sources under the user context, resolve
// entities, fuse — and returns the wrangled table. Per-source work fans
// out over the session's parallelism degree (WithParallelism /
// WithSequential; default one worker per CPU) and merges
// deterministically, so the output is byte-identical at any worker count.
// The context is checked at every task boundary; a cancelled run returns
// ctx.Err() without merging partial fan-out results.
// The returned table is the immutable published copy of the run's output
// (see Wrangled); later reactions publish new versions instead of
// mutating it.
func (s *Session) Run(ctx context.Context) (*Table, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.w.RunContext(ctx); err != nil {
		return nil, err
	}
	s.ran = true
	// A successful run always commits a version; hand out its
	// copy-on-write table, never the live working-data pointer.
	return s.w.Serve.Latest().Data().Table, nil
}

// ApplyFeedback records the given feedback items and reacts
// incrementally: only the artefacts the provenance graph marks as
// affected are recomputed (re-extraction for wrapper feedback,
// reclustering for pair labels, refusion for value verdicts, reselection
// for relevance votes). Items beyond the user context's feedback budget
// are dropped and ErrBudgetExhausted is returned alongside the stats of
// the reaction to the items that fit.
func (s *Session) ApplyFeedback(ctx context.Context, items ...Feedback) (ReactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireRun(); err != nil {
		return ReactStats{}, err
	}
	// Every item is tried against the budget individually, so a cheap
	// item after an unaffordable one is still recorded.
	exhausted := false
	for _, it := range items {
		if !s.w.AddFeedback(it) {
			exhausted = true
		}
	}
	stats, err := s.w.ReactToFeedbackContext(ctx)
	if err != nil {
		return stats, err
	}
	if exhausted {
		return stats, ErrBudgetExhausted
	}
	return stats, nil
}

// Refresh re-acquires the named sources from the provider (all sources
// when none are named) and recomputes each one's extraction chain plus
// the shared integration tail — the source-churn reaction path.
func (s *Session) Refresh(ctx context.Context, sourceIDs ...string) (ReactStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.requireRun(); err != nil {
		return ReactStats{}, err
	}
	if len(sourceIDs) == 0 {
		for _, src := range s.w.Provider.List() {
			sourceIDs = append(sourceIDs, src.ID)
		}
	}
	// One batch: every named source is re-acquired and re-extracted, then
	// the shared integration tail runs once.
	return s.w.RefreshSourcesContext(ctx, sourceIDs)
}

// Report renders the latest committed version's fused results as a
// reviewable report, restricted to the given attributes (none = all).
// Each line carries the fused value, confidence, conflict flag and
// supporting sources — the annotation handles that flow back in via
// ApplyFeedback. Like the other readers it serves from the published
// snapshot without taking the session lock, so it never blocks on an
// in-flight reaction and always pairs consistently with Wrangled().
func (s *Session) Report(title string, attributes ...string) *Report {
	if v := s.w.Serve.Latest(); v != nil {
		return v.Data().Report.Filter(title, attributes...)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return report.Build(s.w, title, attributes)
}

// Wrangled returns the wrangled table of the latest committed version
// (nil before Run). The table is an immutable copy-on-write snapshot:
// later reactions publish new versions instead of mutating it, so a
// caller can hold it across ApplyFeedback / Refresh without ever
// observing a change. It is shared with every other reader of the same
// version — treat it as read-only. For a full consistent snapshot
// (table + report + stats + trust from one commit), use View.
func (s *Session) Wrangled() *Table {
	v := s.w.Serve.Latest()
	if v == nil {
		return nil
	}
	return v.Data().Table
}

// Stats reports what the last full run touched, including the per-stage
// wall-clock attribution (Stats().Stages), as of the latest committed
// version. The returned stats are the caller's own copy: reactions
// publish new versions instead of mutating them, and the maps are not
// shared with other callers.
func (s *Session) Stats() RunStats {
	if v := s.w.Serve.Latest(); v != nil {
		return v.Data().Stats.Clone()
	}
	// Before the first publication nothing has run; the zero-valued live
	// stats carry no reference fields a reaction could later mutate.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.LastStats
}

// Snapshot reports per-source selection, utility and quality dimensions
// as of the latest committed version. The returned map is the caller's
// own copy — mutating it affects nobody. Before the first publication it
// reflects the live (empty) working data.
func (s *Session) Snapshot() map[string]SourceReport {
	if v := s.w.Serve.Latest(); v != nil {
		return maps.Clone(v.Data().Sources)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Snapshot()
}

// SelectedSources returns the ids of sources integrated into the latest
// committed version (nil before Run). The slice is the caller's own copy.
func (s *Session) SelectedSources() []string {
	v := s.w.Serve.Latest()
	if v == nil {
		return nil
	}
	return append([]string(nil), v.Data().Selected...)
}

// Trust returns the per-source trust map of the latest committed
// version's fusion. The returned map is the caller's own copy.
func (s *Session) Trust() map[string]float64 {
	v := s.w.Serve.Latest()
	if v == nil {
		return nil
	}
	return maps.Clone(v.Data().Trust)
}

// FeedbackSpent returns the total feedback cost recorded so far.
func (s *Session) FeedbackSpent() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Feedback.Spent()
}

// BudgetRemaining reports the unspent feedback budget (-1 = unbounded).
func (s *Session) BudgetRemaining() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.BudgetRemaining()
}

// Evaluate scores the wrangled table against the synthetic ground truth
// (zero Evaluation for providers without one, e.g. files on disk).
func (s *Session) Evaluate() Evaluation {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.domain == Locations {
		return s.w.EvaluateLocations()
	}
	return s.w.EvaluateProducts()
}

// Domain returns the session's wrangling domain.
func (s *Session) Domain() Domain { return s.domain }

// Provider returns the session's source backend.
func (s *Session) Provider() Provider {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Provider
}

func (s *Session) requireRun() error {
	if !s.ran {
		return fmt.Errorf("wrangle: session has not run yet — call Run first")
	}
	return nil
}
