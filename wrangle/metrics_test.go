package wrangle_test

import (
	"context"
	"strings"
	"testing"

	"repro/wrangle"
)

// counter reads a counter's value from the session registry.
func counter(s *wrangle.Session, name string, labels ...string) int64 {
	return s.Metrics().Counter(name, labels...).Value()
}

// reactions reads wrangle_reactions_total for one origin.
func reactions(s *wrangle.Session, origin string) int64 {
	return counter(s, "wrangle_reactions_total", "origin", origin)
}

// stageCount reads how many observations landed in the per-origin stage
// histogram for one stage.
func stageCount(s *wrangle.Session, origin, stage string) int64 {
	return s.Metrics().
		Histogram("wrangle_stage_seconds", wrangle.DurationBuckets(), "origin", origin, "stage", stage).
		Count()
}

func TestMetricsNilWithoutOption(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSeed(3), wrangle.WithSyntheticSources(4))
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics() != nil {
		t.Fatal("Metrics() should be nil without WithMetrics")
	}
	// The disabled path must still wrangle: every instrumentation site is
	// a nil check, not a nil dereference.
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(context.Background(), s.SelectedSources()[0]); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsStageTimingsSequential drives every reaction origin through
// a sequential-tail session and asserts each stamps its stage timings:
// the initial run, a full-tail feedback reaction (source relevance), a
// fuse-only feedback reaction (value confirmation), and a refresh.
func TestMetricsStageTimingsSequential(t *testing.T) {
	s, err := wrangle.New(
		wrangle.WithSeed(7),
		wrangle.WithSyntheticSources(6),
		wrangle.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if got := reactions(s, "run"); got != 1 {
		t.Fatalf("reactions{run} = %d, want 1", got)
	}
	// Sequential run graphs have two stages: the per-source fan-out and
	// the integrate task (fusion runs inside it).
	for _, stage := range []string{"sources", "integrate"} {
		if stageCount(s, "run", stage) == 0 {
			t.Errorf("run reaction left no %s stage timing", stage)
		}
	}
	if counter(s, "wrangle_engine_tasks_total") == 0 {
		t.Error("no engine task spans recorded for the run")
	}

	ids := s.SelectedSources()
	if _, err := s.ApplyFeedback(ctx, wrangle.Feedback{
		Kind: wrangle.SourceRelevant, SourceID: ids[0], Worker: "expert", Cost: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	if got := reactions(s, "feedback"); got != 1 {
		t.Fatalf("reactions{feedback} = %d, want 1", got)
	}
	if stageCount(s, "feedback", "integrate") == 0 {
		t.Error("full-tail feedback reaction left no integrate stage timing")
	}

	// A value confirmation re-fuses without re-integrating: only the fuse
	// stage may gain an observation.
	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	line := v.Report().Lines[0]
	preFuse := stageCount(s, "feedback", "fuse")
	preIntegrate := stageCount(s, "feedback", "integrate")
	if _, err := s.ApplyFeedback(ctx, wrangle.Feedback{
		Kind: wrangle.ValueCorrect, Entity: line.Entity, Attribute: line.Attribute,
		Worker: "expert", Cost: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	if got := stageCount(s, "feedback", "fuse"); got <= preFuse {
		t.Errorf("fuse-only feedback reaction left no fuse stage timing (count %d)", got)
	}
	if got := stageCount(s, "feedback", "integrate"); got != preIntegrate {
		t.Errorf("fuse-only feedback reaction re-integrated: count %d -> %d", preIntegrate, got)
	}

	if _, err := s.Refresh(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if got := reactions(s, "refresh"); got != 1 {
		t.Fatalf("reactions{refresh} = %d, want 1", got)
	}
	if stageCount(s, "refresh", "reextract") == 0 {
		t.Error("refresh reaction left no reextract stage timing")
	}
	if c := s.Metrics().Histogram("wrangle_reaction_seconds", wrangle.DurationBuckets(), "origin", "refresh").Count(); c != 1 {
		t.Errorf("reaction_seconds{refresh} count = %d, want 1", c)
	}
}

// TestMetricsStageTimingsSharded drives the sharded streaming tail and
// asserts the shard-reuse telemetry: resolved/reused counters move, the
// reuse-ratio gauge stays in [0,1], and sharded sessions publish deltas.
func TestMetricsStageTimingsSharded(t *testing.T) {
	s, err := wrangle.New(
		wrangle.WithSeed(21),
		wrangle.WithSyntheticSources(6),
		wrangle.WithIntegrationShards(4),
		wrangle.WithStreamingRefresh(),
		wrangle.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	ids := s.SelectedSources()
	stats, err := s.Refresh(ctx, ids[1])
	if err != nil {
		t.Fatal(err)
	}
	resolved := counter(s, "wrangle_shards_resolved_total")
	reused := counter(s, "wrangle_shards_reused_total")
	if int(resolved) != stats.ShardsResolved || int(reused) != stats.ShardsReused {
		t.Errorf("shard counters (%d resolved, %d reused) disagree with ReactStats %+v",
			resolved, reused, stats)
	}
	if resolved+reused == 0 {
		t.Fatal("sharded refresh moved no shard counters")
	}
	if ratio := s.Metrics().Gauge("wrangle_shard_reuse_ratio").Value(); ratio < 0 || ratio > 1 {
		t.Errorf("reuse ratio gauge out of range: %g", ratio)
	}
	if stageCount(s, "refresh", "resolve") == 0 {
		t.Error("sharded refresh left no resolve stage timing")
	}
	if counter(s, "wrangle_publish_delta_total") == 0 {
		t.Error("sharded reaction did not publish a delta")
	}
}

// TestMetricsRestoredSession reopens a durable session with telemetry
// enabled and asserts the first reaction after warm restart stamps stage
// metrics and WAL activity.
func TestMetricsRestoredSession(t *testing.T) {
	dir := t.TempDir()
	opts := []wrangle.Option{
		wrangle.WithSeed(9),
		wrangle.WithSyntheticSources(6),
		wrangle.WithIntegrationShards(2),
		wrangle.WithStreamingRefresh(),
		wrangle.WithDurableLog(dir),
	}
	s1, err := wrangle.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := wrangle.New(append(opts, wrangle.WithMetrics())...)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Restored() {
		t.Fatal("session did not restore from the durable log")
	}
	// Replay happened before the registry attached, so the WAL counters
	// start from zero; the healthy log replayed without truncation.
	if got := counter(s2, "wrangle_wal_appends_total"); got != 0 {
		t.Fatalf("restored session starts with %d WAL appends recorded", got)
	}
	if got := counter(s2, "wrangle_wal_replay_truncations_total"); got != 0 {
		t.Fatalf("healthy log recorded %d replay truncations", got)
	}

	// First reaction on the warm session: stage timings stamped, the new
	// version appended (and fsynced) to the log.
	if _, err := s2.Refresh(context.Background(), s2.SelectedSources()[0]); err != nil {
		t.Fatal(err)
	}
	if got := reactions(s2, "refresh"); got != 1 {
		t.Fatalf("reactions{refresh} = %d, want 1", got)
	}
	if stageCount(s2, "refresh", "reextract") == 0 {
		t.Error("restored session's first reaction left no reextract stage timing")
	}
	if counter(s2, "wrangle_wal_appends_total") == 0 {
		t.Error("reaction on a durable session recorded no WAL appends")
	}
	if counter(s2, "wrangle_wal_appended_bytes_total") == 0 {
		t.Error("reaction on a durable session recorded no WAL bytes")
	}
}

// TestMetricsScrapeCatalogue scrapes a churning session and asserts the
// exposition carries every advertised family exactly once, in sorted
// order — deterministic modulo sample values.
func TestMetricsScrapeCatalogue(t *testing.T) {
	s, err := wrangle.New(
		wrangle.WithSeed(21),
		wrangle.WithSyntheticSources(6),
		wrangle.WithIntegrationShards(2),
		wrangle.WithStreamingRefresh(),
		wrangle.WithMetrics(),
	)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(ctx, s.SelectedSources()[0]); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := s.Metrics().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, family := range []string{
		"wrangle_reactions_total",
		"wrangle_stage_seconds",
		"wrangle_reaction_seconds",
		"wrangle_task_seconds",
		"wrangle_engine_tasks_total",
		"wrangle_serve_publishes_total",
		"wrangle_serve_reads_total",
		"wrangle_shards_resolved_total",
		"wrangle_shard_reuse_ratio",
		"wrangle_rows",
		"wrangle_version",
	} {
		if n := strings.Count(text, "# TYPE "+family+" "); n != 1 {
			t.Errorf("family %s appears %d times in the scrape, want 1", family, n)
		}
	}
	// Two scrapes of the same registry are byte-identical: no map-order
	// leakage into the exposition.
	var b2 strings.Builder
	if err := s.Metrics().WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if text != b2.String() {
		t.Error("consecutive scrapes of an idle registry differ")
	}
}
