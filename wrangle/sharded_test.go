package wrangle_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/wrangle"
)

func TestWithIntegrationShardsValidation(t *testing.T) {
	if _, err := wrangle.New(wrangle.WithIntegrationShards(0)); err == nil {
		t.Error("WithIntegrationShards(0) should be rejected")
	}
	if _, err := wrangle.New(wrangle.WithIntegrationShards(-3)); err == nil {
		t.Error("WithIntegrationShards(-3) should be rejected")
	}
	if _, err := wrangle.New(wrangle.WithIntegrationShards(4)); err != nil {
		t.Errorf("WithIntegrationShards(4) rejected: %v", err)
	}
}

// sessionFingerprint renders the externally visible read-side of a
// session: full table bytes, report lines and trust.
func sessionFingerprint(t *testing.T, s *wrangle.Session) string {
	t.Helper()
	var b strings.Builder
	tab := s.Wrangled()
	for i := 0; i < tab.Len(); i++ {
		for _, v := range tab.Row(i) {
			b.WriteString(v.String())
			b.WriteByte('|')
		}
		b.WriteByte('\n')
	}
	for _, l := range s.Report("fp").Lines {
		fmt.Fprintf(&b, "%s/%s=%s conf=%g sup=%v\n", l.Entity, l.Attribute, l.Value, l.Confidence, l.Supporters)
	}
	trust := s.Trust()
	srcs := make([]string, 0, len(trust))
	for src := range trust {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		fmt.Fprintf(&b, "trust %s=%g\n", src, trust[src])
	}
	return b.String()
}

// TestShardedSessionByteIdentical is the facade-level identity check: the
// same universe wrangled sequentially and at shard counts 1/2/4/8 serves
// byte-identical tables, reports and trust, after the run and after a
// feedback + refresh round-trip.
func TestShardedSessionByteIdentical(t *testing.T) {
	drive := func(t *testing.T, shards int) string {
		t.Helper()
		opts := []wrangle.Option{wrangle.WithSeed(21), wrangle.WithSyntheticSources(6)}
		if shards > 0 {
			opts = append(opts, wrangle.WithIntegrationShards(shards))
		}
		s := mustRun(t, opts...)
		rep := s.Report("prices", "price")
		if len(rep.Lines) == 0 {
			t.Fatal("no report lines")
		}
		l := rep.Lines[0]
		src := s.SelectedSources()[0]
		if len(l.Supporters) > 0 {
			src = l.Supporters[0]
		}
		if _, err := s.ApplyFeedback(context.Background(), wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: src,
			Entity: l.Entity, Attribute: l.Attribute, Cost: 0.5,
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Refresh(context.Background(), s.SelectedSources()[0]); err != nil {
			t.Fatal(err)
		}
		return sessionFingerprint(t, s)
	}
	want := drive(t, 0)
	for _, shards := range []int{1, 2, 4, 8} {
		if got := drive(t, shards); got != want {
			t.Errorf("shards=%d served different bytes than sequential", shards)
		}
	}
}

// TestShardedViewSharesDeltaPages drives the delta path end to end
// through the facade: consecutive View versions after reactions share
// the untouched shards' records by pointer, which is what keeps
// publication and retention O(changed shard) for sharded sessions.
func TestShardedViewSharesDeltaPages(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(21),
		wrangle.WithSyntheticSources(8),
		wrangle.WithIntegrationShards(4),
		wrangle.WithRetainVersions(8),
	)
	v1, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	// Refresh one source with zero churn several times; across the whole
	// window at least some shards must stay untouched and share records
	// with the previous version.
	sharedTotal, rows := 0, 0
	prev := v1
	for i := 0; i < 3; i++ {
		if _, err := s.Refresh(context.Background(), s.SelectedSources()[i%len(s.SelectedSources())]); err != nil {
			t.Fatal(err)
		}
		cur, err := s.View()
		if err != nil {
			t.Fatal(err)
		}
		if cur.Version() != prev.Version()+1 {
			t.Fatalf("refresh %d: version %d after %d", i, cur.Version(), prev.Version())
		}
		sharedTotal += sharedRecords(prev.Table(), cur.Table())
		rows += cur.Table().Len()
		prev = cur
	}
	if sharedTotal == 0 {
		t.Errorf("no records shared across %d one-source refreshes (%d rows served); delta publication inactive", 3, rows)
	}
}

// sharedRecords counts rows of cur whose record storage is pointer-shared
// with some row of prev.
func sharedRecords(prev, cur *wrangle.Table) int {
	seen := map[*wrangle.Value]bool{}
	for i := 0; i < prev.Len(); i++ {
		if r := prev.Row(i); len(r) > 0 {
			seen[&r[0]] = true
		}
	}
	n := 0
	for i := 0; i < cur.Len(); i++ {
		if r := cur.Row(i); len(r) > 0 && seen[&r[0]] {
			n++
		}
	}
	return n
}
