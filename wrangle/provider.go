package wrangle

import (
	"fmt"

	"repro/internal/sources"
)

// FromFiles builds a Provider over data files on disk. Each file becomes
// one source; the format is inferred from the extension (.csv, .json,
// .kv/.txt, .html). Refreshing a source re-reads its file.
func FromFiles(paths ...string) (Provider, error) {
	p, err := sources.NewFileProvider(paths...)
	if err != nil {
		return nil, fmt.Errorf("wrangle: %w", err)
	}
	return p, nil
}

// FromDir builds a Provider over every recognised data file directly
// inside dir (non-recursive).
func FromDir(dir string) (Provider, error) {
	p, err := sources.NewDirProvider(dir)
	if err != nil {
		return nil, fmt.Errorf("wrangle: %w", err)
	}
	return p, nil
}

// StaticSources builds a Provider over fixed in-memory sources — handy
// for payloads fetched by the caller (HTTP responses, test fixtures).
func StaticSources(items ...*Source) Provider { return sources.NewStatic(items...) }

// RawSource builds an in-memory source from a literal payload.
func RawSource(id string, kind SourceKind, payload string) *Source {
	return &Source{ID: id, Kind: kind, Raw: payload}
}

// Synthetic builds the deterministic synthetic universe used by the
// paper's experiments: a ground-truth world plus nSources imperfect
// sources derived from it (mixed formats, injected errors, staleness).
// Finer generation control lives in repro/wrangle/synth.
func Synthetic(seed int64, domain Domain, nSources int) Provider {
	cfg := sources.DefaultConfig(seed, nSources)
	var world *sources.World
	if domain == Locations {
		world = sources.NewWorld(seed, 0, 200)
		cfg.Domain = sources.DomainLocations
	} else {
		world = sources.NewWorld(seed, 200, 0)
	}
	return sources.Generate(world, cfg)
}
