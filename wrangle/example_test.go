package wrangle_test

import (
	"context"
	"fmt"
	"log"

	"repro/wrangle"
)

// ExampleNew wrangles a small synthetic product universe through the
// public facade: five messy sources (mixed formats, injected errors) in,
// one clean entity table out.
func ExampleNew() {
	s, err := wrangle.New(
		wrangle.WithDomain(wrangle.Products),
		wrangle.WithSeed(42),
		wrangle.WithSyntheticSources(5),
	)
	if err != nil {
		log.Fatal(err)
	}
	table, err := s.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrangled %d entities from %d sources\n",
		table.Len(), len(s.Provider().List()))
	fmt.Printf("columns: %v\n", table.Schema().Names())
	// Output:
	// wrangled 166 entities from 5 sources
	// columns: [sku name brand category price rating updated]
}
