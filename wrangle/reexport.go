package wrangle

// This file re-exports the user-facing types of the internal packages so
// public API consumers never import repro/internal/*. Aliases (not
// wrappers) keep the two views interchangeable inside the module.

import (
	"io"

	wctx "repro/internal/context"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/feedback"
	"repro/internal/ontology"
	"repro/internal/quality"
	"repro/internal/report"
	"repro/internal/sources"
)

// Tabular data: the wrangled output and any table a caller supplies
// (e.g. master data) use this representation.
type (
	// Table is an ordered collection of records under a schema.
	Table = dataset.Table
	// Schema describes a table's columns.
	Schema = dataset.Schema
	// Field is one column of a schema.
	Field = dataset.Field
	// Record is one row.
	Record = dataset.Record
	// Value is one typed cell.
	Value = dataset.Value
	// ValueKind enumerates cell types.
	ValueKind = dataset.Kind
)

// Cell kinds.
const (
	KindNull   = dataset.KindNull
	KindString = dataset.KindString
	KindInt    = dataset.KindInt
	KindFloat  = dataset.KindFloat
	KindBool   = dataset.KindBool
	KindTime   = dataset.KindTime
)

// Table and value constructors.
var (
	// NewTable creates an empty table with the given schema.
	NewTable = dataset.NewTable
	// MustSchema builds a schema, panicking on duplicate names.
	MustSchema = dataset.MustSchema
	// String, Int, Float, Bool, Time and Null construct cell values.
	String = dataset.String
	Int    = dataset.Int
	Float  = dataset.Float
	Bool   = dataset.Bool
	Time   = dataset.Time
	Null   = dataset.Null
)

// ReadCSV parses CSV into a table, inferring column kinds.
func ReadCSV(r io.Reader) (*Table, error) { return dataset.ReadCSV(r) }

// WriteCSV renders a table as CSV.
func WriteCSV(w io.Writer, t *Table) error { return dataset.WriteCSV(w, t) }

// ReadJSON parses a JSON array of flat objects into a table.
func ReadJSON(r io.Reader) (*Table, error) { return dataset.ReadJSON(r) }

// WriteJSON renders a table as a JSON array.
func WriteJSON(w io.Writer, t *Table) error { return dataset.WriteJSON(w, t) }

// User context: weighted quality criteria, elicited directly or via AHP.
type (
	// UserContext is a named set of criterion weights plus resource
	// bounds (source budget, feedback budget).
	UserContext = wctx.UserContext
	// Criterion names a quality dimension the user cares about.
	Criterion = wctx.Criterion
	// AHP is a Saaty pairwise comparison matrix over criteria.
	AHP = wctx.AHP
)

// The standard wrangling criteria.
const (
	Accuracy     = wctx.Accuracy
	Completeness = wctx.Completeness
	Timeliness   = wctx.Timeliness
	Consistency  = wctx.Consistency
	Relevance    = wctx.Relevance
	Cost         = wctx.Cost
)

// NewAHP creates an identity comparison matrix over the given criteria.
func NewAHP(criteria ...Criterion) (*AHP, error) { return wctx.NewAHP(criteria...) }

// BuildUserContext elicits a user context from an AHP matrix, rejecting
// judgements whose consistency ratio exceeds 0.1.
func BuildUserContext(name string, a *AHP, maxSources int, feedbackBudget float64) (*UserContext, error) {
	return wctx.BuildUserContext(name, a, maxSources, feedbackBudget)
}

// Domain ontologies (the data context's taxonomy slot).
type (
	// Taxonomy is a domain ontology consulted by matching & extraction.
	Taxonomy = ontology.Taxonomy
)

// ProductTaxonomy returns the built-in e-commerce ontology.
func ProductTaxonomy() *Taxonomy { return ontology.ProductTaxonomy() }

// LocationTaxonomy returns the built-in business-locations ontology.
func LocationTaxonomy() *Taxonomy { return ontology.LocationTaxonomy() }

// Sources.
type (
	// Provider supplies sources to a session; see FromDir, FromFiles and
	// Synthetic for built-in backends.
	Provider = sources.Provider
	// ConcurrentProvider is the opt-in contract for providers whose
	// Refresh/Lookup are safe to call concurrently for distinct ids —
	// the session then re-acquires refresh batches in parallel on the
	// engine pool. All built-in providers implement it.
	ConcurrentProvider = sources.ConcurrentProvider
	// Source is one data source as a provider publishes it.
	Source = sources.Source
	// SourceKind is a source's syntactic format (CSV, JSON, HTML, KV).
	SourceKind = sources.Kind
)

// Source formats.
const (
	CSV  = sources.KindCSV
	JSON = sources.KindJSON
	HTML = sources.KindHTML
	KV   = sources.KindKV
)

// Feedback: the pay-as-you-go currency.
type (
	// Feedback is one unit of user/crowd feedback.
	Feedback = feedback.Item
	// FeedbackKind classifies a feedback item.
	FeedbackKind = feedback.Kind
)

// Feedback kinds.
const (
	ValueCorrect     = feedback.ValueCorrect
	ValueIncorrect   = feedback.ValueIncorrect
	DuplicatePair    = feedback.DuplicatePair
	NotDuplicatePair = feedback.NotDuplicatePair
	SourceRelevant   = feedback.SourceRelevant
	SourceIrrelevant = feedback.SourceIrrelevant
	WrapperOK        = feedback.WrapperOK
	WrapperBroken    = feedback.WrapperBroken
)

// PairKey canonicalises a record-pair identifier for pair feedback.
func PairKey(a, b string) string { return feedback.PairKey(a, b) }

// Results, statistics and reports.
type (
	// RunStats reports what a full (re)computation touched.
	RunStats = core.RunStats
	// ReactStats reports the scope of an incremental reaction.
	ReactStats = core.ReactStats
	// SourceReport is the per-source line of Session.Snapshot.
	SourceReport = core.SourceReport
	// Evaluation scores wrangled output against synthetic ground truth.
	Evaluation = core.Evaluation
	// Scorecard carries the per-source quality dimensions.
	Scorecard = quality.Scorecard
	// Report is a reviewable snapshot of fused results.
	Report = report.Report
	// ReportLine is one (entity, attribute) line of a report.
	ReportLine = report.Line
	// ReportSummary aggregates a report.
	ReportSummary = report.Summary
)
