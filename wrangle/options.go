package wrangle

import (
	"fmt"
)

// Domain selects which built-in target schema and ontology a session
// wrangles towards.
type Domain string

// Supported domains.
const (
	// Products is the e-commerce domain of the paper's Examples 1-2
	// (target schema sku/name/brand/category/price/rating/updated).
	Products Domain = "products"
	// Locations is the business-locations domain of Example 3.
	Locations Domain = "locations"
)

// settings accumulates option values until New resolves them.
type settings struct {
	domain Domain

	userCtx *UserContext // WithUserContext / WithAHPWeights (last wins)

	taxonomy    *Taxonomy
	taxonomySet bool

	master    *Table
	masterKey string

	sourceBudget    int
	sourceBudgetSet bool

	feedbackBudget    float64
	feedbackBudgetSet bool

	provider Provider

	parallelism int

	integrationShards int

	streamingRefresh bool

	retainVersions int

	watchBuffer int

	durableDir      string
	durableFsync    FsyncPolicy
	durableFsyncSet bool

	metrics bool

	seed         int64
	synthSources int
}

// Option configures a session at construction time. Options validate
// eagerly: New returns the first option error.
type Option func(*settings) error

// WithDomain selects the wrangling domain (Products or Locations).
// Unknown domains are rejected.
func WithDomain(d Domain) Option {
	return func(s *settings) error {
		switch d {
		case Products, Locations:
			s.domain = d
			return nil
		default:
			return fmt.Errorf("unknown domain %q (want %q or %q)", d, Products, Locations)
		}
	}
}

// WithUserContext installs an explicit user context (criterion weights
// plus budgets). Overrides any earlier WithAHPWeights.
func WithUserContext(uc *UserContext) Option {
	return func(s *settings) error {
		if uc == nil {
			return fmt.Errorf("nil user context")
		}
		s.userCtx = uc
		return nil
	}
}

// WithAHPWeights elicits the user context from a pairwise AHP comparison
// matrix. The matrix's consistency ratio is validated (CR <= 0.1), so an
// incoherent set of judgements fails at New rather than silently skewing
// source selection. Overrides any earlier WithUserContext.
func WithAHPWeights(name string, a *AHP) Option {
	return func(s *settings) error {
		if a == nil {
			return fmt.Errorf("nil AHP matrix")
		}
		uc, err := BuildUserContext(name, a, 0, 0)
		if err != nil {
			return err
		}
		s.userCtx = uc
		return nil
	}
}

// WithTaxonomy installs the domain ontology the matcher and extractors
// consult. By default a session uses the built-in taxonomy of its domain;
// passing nil is an error (use the default instead of disabling it).
func WithTaxonomy(t *Taxonomy) Option {
	return func(s *settings) error {
		if t == nil {
			return fmt.Errorf("nil taxonomy")
		}
		s.taxonomy = t
		s.taxonomySet = true
		return nil
	}
}

// WithMasterData installs the caller's own trusted table (e.g. a product
// catalogue) as master data, keyed by the named column. Master data
// powers instance-based matching, unit repair and accuracy scoring.
func WithMasterData(t *Table, key string) Option {
	return func(s *settings) error {
		if t == nil {
			return fmt.Errorf("nil master data table")
		}
		if key == "" {
			return fmt.Errorf("empty master data key column")
		}
		if t.Schema().Index(key) < 0 {
			return fmt.Errorf("master data has no column %q", key)
		}
		s.master = t
		s.masterKey = key
		return nil
	}
}

// WithSourceBudget bounds how many sources the planner may select (the
// "budget for accessing sources", §4.1). Zero means unbounded; negative
// budgets are rejected.
func WithSourceBudget(n int) Option {
	return func(s *settings) error {
		if n < 0 {
			return fmt.Errorf("negative source budget %d", n)
		}
		s.sourceBudget = n
		s.sourceBudgetSet = true
		return nil
	}
}

// WithFeedbackBudget bounds pay-as-you-go feedback spending. Zero means
// unbounded; negative budgets are rejected.
func WithFeedbackBudget(units float64) Option {
	return func(s *settings) error {
		if units < 0 {
			return fmt.Errorf("negative feedback budget %g", units)
		}
		s.feedbackBudget = units
		s.feedbackBudgetSet = true
		return nil
	}
}

// WithSeed sets the deterministic seed for the default synthetic source
// universe (ignored when WithProvider is given).
func WithSeed(seed int64) Option {
	return func(s *settings) error {
		s.seed = seed
		return nil
	}
}

// WithSyntheticSources sets how many sources the default synthetic
// universe generates (ignored when WithProvider is given).
func WithSyntheticSources(n int) Option {
	return func(s *settings) error {
		if n <= 0 {
			return fmt.Errorf("synthetic source count must be positive, got %d", n)
		}
		s.synthSources = n
		return nil
	}
}

// WithParallelism bounds how many workers the session's engine uses
// (n >= 1). Sources are independent until the selection barrier, so
// their extract/match/map chains fan out over n workers; results merge
// in stable provider order. The same bound reaches the integration
// tail's trust stage: the TruthFinder fixpoint partitions its claim set
// into trust-coupled connected components and iterates them on n
// workers, merging per-component trust in sorted component order. Both
// fan-outs make a parallel run byte-identical to a sequential one at
// any n. By default a session uses one worker per CPU.
func WithParallelism(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("parallelism must be at least 1, got %d", n)
		}
		s.parallelism = n
		return nil
	}
}

// WithIntegrationShards splits the integration tail — entity resolution
// and fusion over the union of all selected sources — into n disjoint
// blocking shards that run as parallel engine tasks and merge
// deterministically. Results are byte-identical to the sequential tail
// at every shard count; only the speed and the publication cost change:
// sharded sessions publish snapshot deltas, so a reaction that leaves a
// shard's fused rows untouched shares that shard's table records with
// the predecessor version instead of deep-copying them. n must be at
// least 1 (1 exercises the sharded machinery and delta publication with
// a single shard); by default the tail is sequential. Useful shard
// counts track the worker bound (WithParallelism) — more shards than
// workers only adds merge bookkeeping.
func WithIntegrationShards(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("integration shards must be at least 1, got %d", n)
		}
		s.integrationShards = n
		return nil
	}
}

// WithStreamingRefresh makes reactions recompute only what changed: the
// session memoizes its last integrated tail, and every ApplyFeedback /
// Refresh diffs the rebuilt union against it, re-plans incrementally and
// re-resolves / re-fuses only the shards the delta touched — untouched
// shards keep their clusters and fused pages by reference, all the way
// into the published snapshot version (which already shares untouched
// records by pointer). Results are byte-identical to the full-tail
// recompute; only the reaction cost scales with the change instead of
// the corpus, observable via ReactStats.ShardsResolved /
// ReactStats.ShardsReused and the per-stage ReactStats.Stages split.
// Requires WithIntegrationShards: the dirty set is tracked at shard
// granularity, so a sequential tail has nothing to skip.
func WithStreamingRefresh() Option {
	return func(s *settings) error {
		s.streamingRefresh = true
		return nil
	}
}

// WithRetainVersions bounds how many committed snapshot versions the
// session's serving store keeps (n >= 1; the default is a small
// window). Every successful Run / ApplyFeedback / Refresh
// publishes a copy-on-write version that Session.View reads lock-free;
// retention caps the store's memory at n versions, and View.At can reach
// back exactly that far.
func WithRetainVersions(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("retain versions must be at least 1, got %d", n)
		}
		s.retainVersions = n
		return nil
	}
}

// WithSequential forces one-source-at-a-time execution — equivalent to
// WithParallelism(1). Useful for debugging, for profiling a single
// source's cost, or on machines where the wrangle must not saturate
// every core.
func WithSequential() Option {
	return WithParallelism(1)
}

// WithProvider points the session at an explicit source backend — files
// on disk (FromDir, FromFiles), a synthetic universe (Synthetic), or any
// custom Provider implementation.
func WithProvider(p Provider) Option {
	return func(s *settings) error {
		if p == nil {
			return fmt.Errorf("nil provider")
		}
		s.provider = p
		return nil
	}
}
