package wrangle

import (
	"fmt"

	wctx "repro/internal/context"
	"repro/internal/core"
	"repro/internal/obs"
)

// New builds a wrangling session from functional options. With no options
// it wrangles a small synthetic product universe under a balanced user
// context — the zero-config path. Options validate eagerly; the first
// invalid option aborts construction.
func New(opts ...Option) (*Session, error) {
	s := &settings{
		domain:       Products,
		seed:         1,
		synthSources: 8,
	}
	for _, opt := range opts {
		if opt == nil {
			continue
		}
		if err := opt(s); err != nil {
			return nil, fmt.Errorf("wrangle: %w", err)
		}
	}

	var cfg core.Config
	switch s.domain {
	case Locations:
		cfg = core.LocationConfig()
	default:
		cfg = core.ProductConfig()
	}

	taxonomy := s.taxonomy
	if !s.taxonomySet {
		if s.domain == Locations {
			taxonomy = LocationTaxonomy()
		} else {
			taxonomy = ProductTaxonomy()
		}
	}
	dataCtx := wctx.NewDataContext().WithTaxonomy(taxonomy)
	if s.master != nil {
		dataCtx.WithMaster(s.master, s.masterKey)
	}

	userCtx := s.userCtx
	if s.sourceBudgetSet || s.feedbackBudgetSet {
		if userCtx == nil {
			userCtx = wctx.DefaultUserContext()
		} else {
			// Budgets override a copy — the caller's context is not mutated.
			clone := *userCtx
			userCtx = &clone
		}
		if s.sourceBudgetSet {
			userCtx.MaxSources = s.sourceBudget
		}
		if s.feedbackBudgetSet {
			userCtx.FeedbackBudget = s.feedbackBudget
		}
	}

	provider := s.provider
	if provider == nil {
		provider = Synthetic(s.seed, s.domain, s.synthSources)
	}

	if s.streamingRefresh && s.integrationShards < 1 {
		return nil, fmt.Errorf("wrangle: streaming refresh requires integration shards (add WithIntegrationShards)")
	}

	w := core.New(provider, cfg, userCtx, dataCtx)
	w.Parallelism = s.parallelism             // 0 = auto: one worker per CPU
	w.IntegrationShards = s.integrationShards // 0 = sequential integration tail
	w.StreamingRefresh = s.streamingRefresh
	if s.retainVersions > 0 {
		// Replaced before the first run, so no reader can hold the default
		// store yet.
		w.Serve = core.NewVersionStore(s.retainVersions)
	}
	if s.watchBuffer > 0 {
		w.Serve.SetWatchBuffer(s.watchBuffer)
	}
	sess := &Session{
		w:      w,
		domain: s.domain,
	}
	if s.durableFsyncSet && s.durableDir == "" {
		return nil, fmt.Errorf("wrangle: WithDurableFsync requires WithDurableLog")
	}
	if s.durableDir != "" {
		d, err := core.OpenDurableLog(s.durableDir, s.durableFsync)
		if err != nil {
			return nil, fmt.Errorf("wrangle: %w", err)
		}
		restored, err := w.AttachDurableLog(d)
		if err != nil {
			d.Close()
			return nil, fmt.Errorf("wrangle: %w", err)
		}
		// A restored session already holds committed versions: reactions
		// may proceed without a fresh Run.
		sess.ran = restored
		sess.restored = restored
	}
	if s.metrics {
		// Last: the registry instruments the serve store and (when
		// durable) the WAL, both of which must exist first.
		w.SetMetrics(obs.NewRegistry())
	}
	return sess, nil
}
