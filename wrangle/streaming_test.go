package wrangle_test

import (
	"context"
	"testing"

	"repro/wrangle"
)

func TestWithStreamingRefreshValidation(t *testing.T) {
	if _, err := wrangle.New(wrangle.WithStreamingRefresh()); err == nil {
		t.Error("WithStreamingRefresh without WithIntegrationShards should be rejected")
	}
	if _, err := wrangle.New(wrangle.WithStreamingRefresh(), wrangle.WithIntegrationShards(4)); err != nil {
		t.Errorf("WithStreamingRefresh + shards rejected: %v", err)
	}
	// Option order must not matter.
	if _, err := wrangle.New(wrangle.WithIntegrationShards(2), wrangle.WithStreamingRefresh()); err != nil {
		t.Errorf("option order sensitivity: %v", err)
	}
}

// TestStreamingSessionByteIdentical is the facade-level identity check:
// the same universe wrangled with a full-tail session and a streaming
// session serves byte-identical tables, reports and trust after the run
// and after feedback + refresh round-trips — while the streaming session
// reports shard reuse.
func TestStreamingSessionByteIdentical(t *testing.T) {
	drive := func(t *testing.T, streaming bool) (string, wrangle.ReactStats) {
		t.Helper()
		opts := []wrangle.Option{
			wrangle.WithSeed(21), wrangle.WithSyntheticSources(6),
			wrangle.WithIntegrationShards(4),
		}
		if streaming {
			opts = append(opts, wrangle.WithStreamingRefresh())
		}
		s, err := wrangle.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		if _, err := s.Run(ctx); err != nil {
			t.Fatal(err)
		}
		ids := s.SelectedSources()
		if _, err := s.ApplyFeedback(ctx, wrangle.Feedback{
			Kind: wrangle.SourceRelevant, SourceID: ids[0], Worker: "expert", Cost: 0.2,
		}); err != nil {
			t.Fatal(err)
		}
		stats, err := s.Refresh(ctx, ids[1])
		if err != nil {
			t.Fatal(err)
		}
		return sessionFingerprint(t, s), stats
	}
	full, fullStats := drive(t, false)
	stream, streamStats := drive(t, true)
	if full != stream {
		t.Error("streaming session diverged from the full-tail session")
	}
	if fullStats.ShardsResolved != 4 {
		t.Errorf("full-tail refresh should resolve all 4 shards, got %+v", fullStats)
	}
	if streamStats.ShardsResolved+streamStats.ShardsReused != 4 {
		t.Errorf("streaming refresh shard split inconsistent: %+v", streamStats)
	}
}
