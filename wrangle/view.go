package wrangle

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
)

// Origin says which reaction path committed a served version.
type Origin = serve.Origin

// The publication origins.
const (
	// OriginRun is a full pipeline run.
	OriginRun = serve.OriginRun
	// OriginFeedback is an incremental feedback reaction.
	OriginFeedback = serve.OriginFeedback
	// OriginRefresh is a source-churn refresh.
	OriginRefresh = serve.OriginRefresh
)

// View is a pinned read handle onto one committed version of the
// session's output: the wrangled table, its report, run/reaction stats,
// per-source snapshot and trust map, all from the same atomic commit.
//
// Obtaining a view is one atomic pointer load — it never takes the
// session lock, so heavy read traffic proceeds full-speed while
// ApplyFeedback or Refresh recompute in the background. Every accessor
// reads the pinned version, so a reader that got a view mid-reaction sees
// a complete, mutually consistent snapshot: the table, stats and trust it
// observes all belong to the same version, never a mixture of old and
// new. The pinned data is copy-on-write — no later reaction mutates it —
// and shared between every reader of that version: treat it as read-only.
type View struct {
	store *core.VersionStore
	v     *core.PublishedVersion
}

// View returns a read handle pinned to the latest committed version. It
// errors only before the first successful Run (nothing has been published
// yet). Call it again (or use Latest) to observe newer versions.
func (s *Session) View() (*View, error) {
	// Lock-free by construction: the store pointer is fixed when the
	// session is built, and Latest is a single atomic load.
	v := s.w.Serve.Latest()
	if v == nil {
		return nil, fmt.Errorf("wrangle: no version published yet — call Run first")
	}
	return &View{store: s.w.Serve, v: v}, nil
}

// Version returns the pinned version's sequence number (1 = first run).
func (v *View) Version() uint64 { return v.v.Seq() }

// Step returns the provenance step that produced the pinned version,
// linking the served snapshot to the lineage that explains it.
func (v *View) Step() uint64 { return v.v.Step() }

// Origin returns which reaction path committed the pinned version.
func (v *View) Origin() Origin { return v.v.Origin() }

// PublishedAt returns the pinned version's commit time.
func (v *View) PublishedAt() time.Time { return v.v.At() }

// Table returns the pinned version's wrangled table (one row per
// entity). The table was frozen at publication and is never mutated
// afterwards; it is shared by every reader of this version, and on
// sharded sessions (WithIntegrationShards) its rows may additionally be
// shared by pointer with neighbouring versions whose shard did not
// change — treat it as strictly read-only.
func (v *View) Table() *Table { return v.v.Data().Table }

// Report returns the pinned version's prebuilt report over all
// attributes, with supporters resolved against this version's fusion.
func (v *View) Report() *Report { return v.v.Data().Report }

// Stats returns the run statistics stamped onto the pinned version,
// including the per-stage wall-clock attribution (Stats().Stages).
func (v *View) Stats() RunStats { return v.v.Data().Stats }

// React returns the incremental reaction that committed the pinned
// version (zero for run-origin versions).
func (v *View) React() ReactStats { return v.v.Data().React }

// Trust returns the pinned version's per-source trust map (read-only).
func (v *View) Trust() map[string]float64 { return v.v.Data().Trust }

// Sources returns the pinned version's per-source selection, utility and
// quality snapshot (read-only).
func (v *View) Sources() map[string]SourceReport { return v.v.Data().Sources }

// Selected returns the sorted ids of the sources integrated into the
// pinned version's table (read-only).
func (v *View) Selected() []string { return v.v.Data().Selected }

// Changes returns the publisher's summary of what the pinned version
// changed relative to its predecessor — the same ChangeSet the change
// feed (Session.Watch) delivers, retained so a late reader can still
// see the delta. Full when the session could not bound it.
func (v *View) Changes() ChangeSet { return v.v.Changes() }

// Entities returns, for each Table row, the entity id that row
// describes, aligned by index and sorted ascending (rows are
// entity-sorted) — binary-search an id from Changes().ChangedRecords
// straight to its row. Read-only; nil for empty outputs.
func (v *View) Entities() []string { return v.v.Data().Entities }

// At returns a view pinned to the given version number, if it is still
// inside the store's retention window. Pruned or never-published versions
// error.
func (v *View) At(version uint64) (*View, error) {
	pv, err := v.store.At(version)
	if err != nil {
		return nil, fmt.Errorf("wrangle: %w", err)
	}
	return &View{store: v.store, v: pv}, nil
}

// Latest returns a new view pinned to the newest committed version —
// the lock-free way for a long-lived reader to follow publications.
func (v *View) Latest() *View {
	return &View{store: v.store, v: v.store.Latest()}
}

// Versions returns the version numbers currently retained, oldest first.
func (v *View) Versions() []uint64 { return v.store.Versions() }
