package wrangle

import (
	"fmt"

	"repro/internal/core"
)

// Durability: a session opened with WithDurableLog appends every committed
// publication to a compact binary log under the state directory, and a new
// session opened over the same directory restores the snapshot store (with
// its original sequence numbers, retention window and change sets), the
// working data and the streaming memo inputs — so the process can die and
// come back warm: readers resume at the exact retained versions, and the
// first reaction after restart recomputes a partial tail, not a cold run.

// FsyncPolicy says when the durable log calls fsync (see the constants).
type FsyncPolicy = core.FsyncPolicy

// The fsync policies.
const (
	// FsyncOnCheckpoint (the default) fsyncs at checkpoints, compactions
	// and close: crash-safe against process death, bounded loss (since the
	// last checkpoint) against power failure.
	FsyncOnCheckpoint = core.FsyncOnCheckpoint
	// FsyncAlways fsyncs after every published version — durable against
	// power loss before the publish returns, at a per-publish cost.
	FsyncAlways = core.FsyncAlways
)

// DurableStats reports a session's durable-log state (Session.Durability).
type DurableStats = core.DurableStats

// WithDurableLog makes the session durable: committed versions append to a
// log in dir (created if missing), and if the directory already holds a
// log written by a compatible session (same domain schema, shard count,
// streaming mode and retention), the new session restores it — Run may be
// skipped (see Session.Restored) and reactions continue from the restored
// state. A log written under a different configuration is refused.
func WithDurableLog(dir string) Option {
	return func(s *settings) error {
		if dir == "" {
			return fmt.Errorf("empty durable log directory")
		}
		s.durableDir = dir
		return nil
	}
}

// WithDurableFsync selects the log's fsync policy; requires WithDurableLog.
func WithDurableFsync(p FsyncPolicy) Option {
	return func(s *settings) error {
		if p != FsyncOnCheckpoint && p != FsyncAlways {
			return fmt.Errorf("unknown fsync policy %d", p)
		}
		s.durableFsync = p
		s.durableFsyncSet = true
		return nil
	}
}

// Restored reports whether this session was rehydrated from a durable log
// holding committed versions. A restored session can serve (View, Watch,
// Wrangled) and react (ApplyFeedback, Refresh) immediately, without a Run.
func (s *Session) Restored() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restored
}

// Durability returns the durable log's state; ok is false for in-memory
// sessions.
func (s *Session) Durability() (stats DurableStats, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.w.Durable()
	if d == nil {
		return DurableStats{}, false
	}
	return d.Stats(), true
}

// RetainedVersions reports the serving store's retention bound — how many
// committed versions View.At and Watch catch-up can reach back.
func (s *Session) RetainedVersions() int {
	return s.w.Serve.Retain()
}

// Checkpoint compacts the durable log down to the retention window and
// fsyncs it: on return every committed version is durable against power
// loss regardless of the fsync policy. It is an error on an in-memory
// session.
func (s *Session) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Checkpoint()
}

// Close flushes and closes the session's durable log (no-op for in-memory
// sessions). The session must not be used afterwards.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.w.Durable()
	if d == nil {
		return nil
	}
	return d.Close()
}
