// Package synth re-exports the synthetic workload generator behind the
// public API surface: a deterministic ground-truth world (products or
// business locations) plus derived sources exhibiting the paper's 4 V's —
// volume (many sources), variety (CSV/JSON/HTML/KV under divergent
// schemas), veracity (injected typos, nulls, unit drift, staleness,
// fantasy records) and velocity (price churn over a logical clock).
//
// Sessions that just need "some sources" can use wrangle.Synthetic or the
// default universe; this package is for callers that tune the generator —
// error rates, format mix, coverage, staleness — the way the experiments
// do. A *Universe satisfies wrangle.Provider and plugs straight into
// wrangle.WithProvider.
package synth

import (
	"time"

	"repro/internal/sources"
)

// Re-exported generator types.
type (
	// World is the synthetic ground truth: a catalogue of products
	// and/or businesses whose prices evolve over a logical clock.
	World = sources.World
	// Product is one ground-truth catalogue entry.
	Product = sources.Product
	// Business is one ground-truth business location.
	Business = sources.Business
	// Universe is a world plus the sources derived from it; it
	// implements wrangle.Provider.
	Universe = sources.Universe
	// Config holds the generation knobs (the 4 V's).
	Config = sources.Config
	// ErrorRates configures per-field error-injection probabilities.
	ErrorRates = sources.ErrorRates
	// Source is one synthetic source with ground-truth annotations.
	Source = sources.Source
	// EmittedRecord is one published row with its truth annotations.
	EmittedRecord = sources.EmittedRecord
	// Template is the page template of an HTML source.
	Template = sources.Template
	// Domain selects products or locations generation.
	Domain = sources.Domain
	// Kind is a source's publication format.
	Kind = sources.Kind
	// ErrorKind labels an injected veracity error.
	ErrorKind = sources.ErrorKind
)

// Generation domains.
const (
	DomainProducts  = sources.DomainProducts
	DomainLocations = sources.DomainLocations
)

// Source formats.
const (
	KindCSV  = sources.KindCSV
	KindJSON = sources.KindJSON
	KindHTML = sources.KindHTML
	KindKV   = sources.KindKV
)

// NewWorld creates a ground-truth world with the given number of products
// and businesses, deterministic in seed.
func NewWorld(seed int64, nProducts, nBusinesses int) *World {
	return sources.NewWorld(seed, nProducts, nBusinesses)
}

// Generate derives cfg.NumSources sources from the world.
func Generate(w *World, cfg Config) *Universe { return sources.Generate(w, cfg) }

// DefaultConfig returns a balanced universe configuration for nSources
// product sources.
func DefaultConfig(seed int64, nSources int) Config { return sources.DefaultConfig(seed, nSources) }

// DefaultErrorRates returns the moderate-veracity setting used by most
// experiments.
func DefaultErrorRates() ErrorRates { return sources.DefaultErrorRates() }

// AsOf maps a logical world clock to wall-clock time.
func AsOf(clock int) time.Time { return sources.AsOf(clock) }
