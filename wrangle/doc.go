// Package wrangle is the public entry point to the repro's data wrangling
// pipeline — the automated, context-aware, pay-as-you-go architecture of
// Furche et al., "Data Wrangling for Big Data" (EDBT 2016), Figure 1.
//
// It is a facade over the internal packages: callers configure a session
// with functional options, run it, and react to feedback — without ever
// importing repro/internal/... (which is free to churn between releases).
//
// # Quickstart
//
//	s, err := wrangle.New(
//		wrangle.WithDomain(wrangle.Products),
//		wrangle.WithSeed(42),
//	)
//	if err != nil { ... }
//	table, err := s.Run(context.Background())
//
// # Real data
//
// Point a session at CSV/JSON/KV/HTML files on disk instead of the
// synthetic universe:
//
//	p, err := wrangle.FromDir("./data")
//	s, err := wrangle.New(wrangle.WithProvider(p))
//
// Any backend implementing the Provider interface works the same way.
//
// # Lifecycle
//
// A Session wraps the pay-as-you-go loop: Run wrangles, Report renders
// reviewable output, ApplyFeedback assimilates annotations incrementally
// (only affected artefacts are recomputed), and Refresh reacts to source
// churn. All lifecycle methods take a context.Context and honour
// cancellation between pipeline stages.
//
// # Serving
//
// Every successful Run / ApplyFeedback / Refresh commits an immutable
// copy-on-write snapshot version. Readers pin one with Session.View —
// a single atomic load, never blocked by an in-flight reaction — and
// time-travel within the retention window via View.At
// (WithRetainVersions bounds it; pruned versions report ErrCompacted).
//
// Consumers that follow the output subscribe instead of polling:
// Session.Watch pushes every committed version as a Change — a View
// pinned to the version plus a ChangeSet saying exactly which shards
// and records moved, so per-version cost is O(delta) on sharded
// sessions. Streams are gapless and monotonic, catch up from any
// retained version (ErrCompacted below the window), and never block
// the pipeline: a subscriber that stops draining its bounded buffer
// (WithWatchBuffer) is evicted with one final Change{Evicted: true}.
//
// # Durability
//
// By default everything above is in-memory and dies with the process.
// WithDurableLog(dir) attaches a checksummed append-only log: every
// committed version is appended O(delta) — fused pages are written
// once and referenced by id thereafter — and reopening the same
// directory restores the session warm (Session.Restored reports
// true). A restored session serves its retained versions immediately
// (identical tables, trust state and compaction boundaries — View.At
// below the window answers ErrCompacted exactly as before the
// restart), watchers catch up from the restored window, and the first
// Refresh runs as a partial tail over the rehydrated streaming memo
// rather than a cold full run. Session.Checkpoint rewrites the log
// down to the retention window; WithDurableFsync selects FsyncAlways
// (fsync every commit) over the default FsyncOnCheckpoint;
// Session.Durability reports log size and checkpoint position; Close
// releases the log so another process can open it.
//
// # Observability
//
// WithMetrics turns on the telemetry spine: Session.Metrics returns a
// registry of atomic counters, gauges and fixed-bucket histograms that
// every layer stamps — per-stage and per-task durations for each run
// and reaction, shard reuse, publish delta shapes, serve reads and
// typed read errors, change-feed fan-out, and (for durable sessions)
// WAL activity. Metrics.WritePrometheus renders a deterministic
// Prometheus text exposition, safe to scrape from any goroutine while
// the session reacts; cmd/wrangle -serve mounts it at GET /metrics and
// net/http/pprof behind -pprof. Telemetry is off by default and the
// disabled path costs one nil check per site (Session.Metrics returns
// nil). The README's Observability section holds the metric catalogue.
package wrangle
