package wrangle_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/wrangle"
)

// durableOpts is the shared session shape of the facade durability tests:
// small sharded streaming universe, tight retention, durable log in dir.
func durableOpts(dir string) []wrangle.Option {
	return []wrangle.Option{
		wrangle.WithSeed(9),
		wrangle.WithSyntheticSources(5),
		wrangle.WithIntegrationShards(2),
		wrangle.WithStreamingRefresh(),
		wrangle.WithRetainVersions(3),
		wrangle.WithDurableLog(dir),
	}
}

// TestDurableOptionValidation pins the option guard rails: an empty
// directory, a bogus fsync policy and an fsync policy without a log are
// all construction-time errors.
func TestDurableOptionValidation(t *testing.T) {
	if _, err := wrangle.New(wrangle.WithDurableLog("")); err == nil || !strings.Contains(err.Error(), "empty durable log directory") {
		t.Fatalf("empty dir: %v", err)
	}
	if _, err := wrangle.New(wrangle.WithDurableFsync(wrangle.FsyncPolicy(42))); err == nil || !strings.Contains(err.Error(), "unknown fsync policy") {
		t.Fatalf("bogus policy: %v", err)
	}
	if _, err := wrangle.New(wrangle.WithDurableFsync(wrangle.FsyncAlways)); err == nil || !strings.Contains(err.Error(), "requires WithDurableLog") {
		t.Fatalf("fsync without log: %v", err)
	}
}

// TestInMemorySessionDurability pins the in-memory defaults: not
// restored, no durability stats, Close is a no-op, Checkpoint errors.
func TestInMemorySessionDurability(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSyntheticSources(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Restored() {
		t.Fatal("in-memory session claims to be restored")
	}
	if _, ok := s.Durability(); ok {
		t.Fatal("in-memory session reports durability stats")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint on an in-memory session succeeded")
	}
}

// TestSessionWarmRestart is the facade acceptance path: run + react under
// a durable log, close, reopen — the new session reports Restored, serves
// the same retained versions with identical tables, keeps the retention
// boundary (ErrCompacted below the window), and reacts warm.
func TestSessionWarmRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	s, err := wrangle.New(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if s.Restored() {
		t.Fatal("fresh directory restored a session")
	}
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	// Publish past the retention window so the compaction boundary is live.
	for i := 0; i < 4; i++ {
		if _, err := s.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	wantVersions := v.Versions()
	wantTable := s.Wrangled().String()
	wantTrust := s.Trust()
	if _, err := v.At(1); !errors.Is(err, wrangle.ErrCompacted) {
		t.Fatalf("live At(1) = %v, want ErrCompacted", err)
	}
	ds, ok := s.Durability()
	if !ok || ds.Bytes <= 0 || ds.Dir != dir {
		t.Fatalf("durability stats = %+v ok=%v", ds, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := wrangle.New(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Restored() {
		t.Fatal("reopen did not restore the session")
	}
	rv, err := r.View()
	if err != nil {
		t.Fatal(err)
	}
	if got := rv.Versions(); len(got) != len(wantVersions) || got[0] != wantVersions[0] || got[len(got)-1] != wantVersions[len(got)-1] {
		t.Fatalf("restored versions %v, want %v", got, wantVersions)
	}
	if got := r.Wrangled().String(); got != wantTable {
		t.Fatal("restored table differs from the live session's")
	}
	gotTrust := r.Trust()
	for id, w := range wantTrust {
		if gotTrust[id] != w {
			t.Fatalf("trust[%s] = %g, want %g", id, gotTrust[id], w)
		}
	}
	// The retention boundary answers identically right after rehydration.
	if _, err := rv.At(1); !errors.Is(err, wrangle.ErrCompacted) {
		t.Fatalf("restored At(1) = %v, want ErrCompacted", err)
	}
	// Every retained version's table round-tripped.
	for _, seq := range wantVersions {
		lv, err := v.At(seq)
		if err != nil {
			t.Fatalf("live At(%d): %v", seq, err)
		}
		got, err := rv.At(seq)
		if err != nil {
			t.Fatalf("restored At(%d): %v", seq, err)
		}
		if lv.Table().String() != got.Table().String() {
			t.Fatalf("version %d table diverged after restore", seq)
		}
	}

	// Warm reaction without a fresh Run: requireRun must pass, the memo
	// must engage, and the published version continues the sequence.
	stats, err := r.Refresh(ctx, r.SelectedSources()[0])
	if err != nil {
		t.Fatalf("post-restore refresh: %v", err)
	}
	if stats.ShardsReused == 0 {
		t.Fatalf("post-restore refresh reused no shards: %+v", stats)
	}
	rv2, _ := r.View()
	if rv2.Version() != wantVersions[len(wantVersions)-1]+1 {
		t.Fatalf("post-restore publish seq %d, want %d", rv2.Version(), wantVersions[len(wantVersions)-1]+1)
	}
}

// TestSessionWatchAfterRestart: a watcher subscribing after a warm
// restart catches up from the restored retention window, exactly like a
// live store.
func TestSessionWatchAfterRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := wrangle.New(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Refresh(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := wrangle.New(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	ch, cancel, err := r.Watch(ctx, 1)
	if err != nil {
		t.Fatalf("watch from restored window: %v", err)
	}
	defer cancel()
	select {
	case c := <-ch:
		if c.Version() != 2 {
			t.Fatalf("catch-up delivered version %d, want 2", c.Version())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("restored watch delivered no catch-up")
	}
}

// TestCheckpointBoundsLog pins Session.Checkpoint: after growth, a
// checkpoint rewrites the log down to the retention window, records the
// checkpointed seq, and the compacted log still restores.
func TestCheckpointBoundsLog(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	s, err := wrangle.New(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Refresh(ctx); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := s.Durability()
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after, _ := s.Durability()
	if after.Bytes >= before.Bytes {
		t.Fatalf("checkpoint did not shrink the log: %d -> %d bytes", before.Bytes, after.Bytes)
	}
	v, _ := s.View()
	if after.LastCheckpointSeq != v.Version() {
		t.Fatalf("checkpoint seq %d, want latest %d", after.LastCheckpointSeq, v.Version())
	}
	wantTable := s.Wrangled().String()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := wrangle.New(durableOpts(dir)...)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if !r.Restored() || r.Wrangled().String() != wantTable {
		t.Fatal("compacted log did not restore the same session")
	}
}
