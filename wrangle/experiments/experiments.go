// Package experiments re-exports the reproduction's experiment harness
// through the public API surface: each function regenerates one
// paper-claim table (manual-vs-automated effort, user-context trade-offs,
// evidence ablation, pay-as-you-go curves, scale bounds, incremental
// reaction scope) deterministically in its seed. cmd/experiments and the
// root benchmark suite drive these.
package experiments

import (
	"repro/internal/experiments"
)

// Re-exported result types.
type (
	// Table is a formatted experiment result table.
	Table = experiments.Table
	// Row types carry each experiment's per-row measurements.
	E1Result = experiments.E1Result
	E2Row    = experiments.E2Row
	E3Row    = experiments.E3Row
	E4Row    = experiments.E4Row
	E5Row    = experiments.E5Row
	E5bRow   = experiments.E5bRow
	E6Row    = experiments.E6Row
	E7Row    = experiments.E7Row
	E8Row    = experiments.E8Row
	E9Row    = experiments.E9Row
	E10Row   = experiments.E10Row
	F1Row    = experiments.F1Row
)

// E1ManualVsAutomated measures wrangling effort share, manual vs the
// automated pipeline.
func E1ManualVsAutomated(seed int64, nSources int) (Table, []E1Result) {
	return experiments.E1ManualVsAutomated(seed, nSources)
}

// E2UserContexts contrasts source selection and output quality across
// user contexts (Example 2).
func E2UserContexts(seed int64, nSources int) (Table, []E2Row) {
	return experiments.E2UserContexts(seed, nSources)
}

// E3ContextExtraction measures context-informed extraction and repair.
func E3ContextExtraction(seed int64, nSources int) (Table, []E3Row) {
	return experiments.E3ContextExtraction(seed, nSources)
}

// E4EvidenceTypes ablates the data-context evidence types.
func E4EvidenceTypes(seed int64, nSources int) (Table, []E4Row) {
	return experiments.E4EvidenceTypes(seed, nSources)
}

// E5PayAsYouGo plots the feedback-vs-quality curve (§2.4).
func E5PayAsYouGo(seed int64, nSources, batches, pairsPerBatch int) (Table, []E5Row) {
	return experiments.E5PayAsYouGo(seed, nSources, batches, pairsPerBatch)
}

// E5bSharedVsSiloed contrasts shared feedback assimilation with
// single-component feedback.
func E5bSharedVsSiloed(seed int64, nSources int) (Table, []E5bRow) {
	return experiments.E5bSharedVsSiloed(seed, nSources)
}

// E6BoundedEvaluation measures bounded-resource query evaluation at the
// given input sizes.
func E6BoundedEvaluation(sizes []int) (Table, []E6Row) {
	return experiments.E6BoundedEvaluation(sizes)
}

// E7CQApproximation measures conjunctive-query approximation quality.
func E7CQApproximation(seed int64, nodes, edges int) (Table, []E7Row) {
	return experiments.E7CQApproximation(seed, nodes, edges)
}

// E8KBCvsWrangler contrasts knowledge-base-construction style output with
// the wrangler's.
func E8KBCvsWrangler(seed int64, nSources int) (Table, []E8Row) {
	return experiments.E8KBCvsWrangler(seed, nSources)
}

// E9Uncertainty measures uncertainty-aware hypothesis handling.
func E9Uncertainty(seed int64, hypotheses, nSources int) (Table, []E9Row) {
	return experiments.E9Uncertainty(seed, hypotheses, nSources)
}

// E10Incremental contrasts incremental reaction scope against full
// reruns under source churn.
func E10Incremental(seed int64, nSources, events int) (Table, []E10Row) {
	return experiments.E10Incremental(seed, nSources, events)
}

// F1Architecture runs the full Figure-1 architecture smoke workload.
func F1Architecture(seed int64, nSources int) (Table, []F1Row) {
	return experiments.F1Architecture(seed, nSources)
}
