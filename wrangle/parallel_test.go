package wrangle_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/wrangle"
)

func TestParallelismOptionValidation(t *testing.T) {
	for _, n := range []int{0, -1} {
		if _, err := wrangle.New(wrangle.WithParallelism(n)); err == nil {
			t.Errorf("WithParallelism(%d) accepted", n)
		} else if !strings.Contains(err.Error(), "parallelism") {
			t.Errorf("WithParallelism(%d) error = %v, want parallelism message", n, err)
		}
	}
	if _, err := wrangle.New(wrangle.WithParallelism(8)); err != nil {
		t.Errorf("WithParallelism(8) rejected: %v", err)
	}
}

// TestParallelRunByteIdentical asserts the public determinism contract:
// the same seed wrangled with WithSequential and WithParallelism(4)
// produces byte-identical tables and identical selections.
func TestParallelRunByteIdentical(t *testing.T) {
	run := func(opt wrangle.Option) (string, []string) {
		s, err := wrangle.New(wrangle.WithSeed(11), wrangle.WithSyntheticSources(10), opt)
		if err != nil {
			t.Fatal(err)
		}
		tab, err := s.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return tab.String(), s.SelectedSources()
	}
	seqTab, seqSel := run(wrangle.WithSequential())
	parTab, parSel := run(wrangle.WithParallelism(4))
	if seqTab != parTab {
		t.Errorf("parallel table diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqTab, parTab)
	}
	if strings.Join(seqSel, ",") != strings.Join(parSel, ",") {
		t.Errorf("selection diverged: sequential %v, parallel %v", seqSel, parSel)
	}
}

// cancellingProvider wraps a real provider and cancels the run's context
// the first time a source's processing chain consults the provider clock
// — i.e. from *inside* the fan-out, while other source tasks are queued.
type cancellingProvider struct {
	wrangle.Provider
	once   sync.Once
	cancel context.CancelFunc
}

func (p *cancellingProvider) Clock() int {
	p.once.Do(p.cancel)
	return p.Provider.Clock()
}

// TestRunStopsPromptlyMidFanOut cancels from within the first in-flight
// source task and checks that the run aborts at the next task boundary
// and leaves the session consistent: nothing wrangled, no half-processed
// source marked selected, and a subsequent clean run produces exactly
// what an undisturbed session produces.
func TestRunStopsPromptlyMidFanOut(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p := &cancellingProvider{
		Provider: wrangle.Synthetic(23, wrangle.Products, 12),
		cancel:   cancel,
	}
	s, err := wrangle.New(
		wrangle.WithProvider(p),
		wrangle.WithParallelism(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if s.Wrangled() != nil {
		t.Error("cancelled run left a wrangled table")
	}
	if sel := s.SelectedSources(); len(sel) != 0 {
		t.Errorf("cancelled run left sources selected: %v", sel)
	}

	// The session recovers and is indistinguishable from one that was
	// never cancelled: outcomes only merge at the selection barrier.
	got, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := wrangle.New(
		wrangle.WithProvider(wrangle.Synthetic(23, wrangle.Products, 12)),
		wrangle.WithParallelism(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Error("post-cancellation run diverged from an undisturbed session's run")
	}
}
