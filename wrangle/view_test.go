package wrangle_test

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/wrangle"
)

func mustRun(t *testing.T, opts ...wrangle.Option) *wrangle.Session {
	t.Helper()
	s, err := wrangle.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestViewBeforeRunErrors(t *testing.T) {
	s, err := wrangle.New(wrangle.WithSeed(2), wrangle.WithSyntheticSources(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.View(); err == nil {
		t.Fatal("View before Run should error")
	}
	if s.Wrangled() != nil {
		t.Error("Wrangled before Run should be nil")
	}
}

func TestViewVersionLifecycle(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(4),
		wrangle.WithSyntheticSources(6),
		wrangle.WithRetainVersions(8),
	)
	v1, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	if v1.Version() != 1 || v1.Origin() != wrangle.OriginRun {
		t.Fatalf("first view = v%d origin %q, want v1 run", v1.Version(), v1.Origin())
	}
	if v1.Step() == 0 {
		t.Error("version not stamped with a provenance step")
	}
	if v1.Table().Len() == 0 || v1.Report() == nil || len(v1.Report().Lines) == 0 {
		t.Fatal("published table/report empty")
	}
	if got, want := v1.Stats().RowsWrangled, v1.Table().Len(); got != want {
		t.Errorf("stats say %d rows, table has %d", got, want)
	}
	// Engine instrumentation: the run's wall clock attributes to stages.
	stages := v1.Stats().Stages
	for _, stage := range []string{"sources", "select", "integrate"} {
		if _, ok := stages[stage]; !ok {
			t.Errorf("Stats().Stages missing %q (got %v)", stage, stages)
		}
	}

	// A feedback reaction commits version 2 with origin feedback.
	rep := s.Report("prices", "price")
	items := make([]wrangle.Feedback, 5)
	for i := range items {
		items[i] = wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: s.SelectedSources()[0],
			Entity: rep.Lines[0].Entity, Attribute: "price", Cost: 0.5,
		}
	}
	if _, err := s.ApplyFeedback(context.Background(), items...); err != nil {
		t.Fatal(err)
	}
	v2 := v1.Latest()
	if v2.Version() != 2 || v2.Origin() != wrangle.OriginFeedback {
		t.Fatalf("after feedback: v%d origin %q, want v2 feedback", v2.Version(), v2.Origin())
	}
	if !v2.React().Refused {
		t.Error("feedback version should carry its reaction stats")
	}

	// A refresh commits version 3 with origin refresh, and its reaction
	// stages are stamped on.
	if _, err := s.Refresh(context.Background(), s.SelectedSources()[0]); err != nil {
		t.Fatal(err)
	}
	v3, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	if v3.Version() != 3 || v3.Origin() != wrangle.OriginRefresh {
		t.Fatalf("after refresh: v%d origin %q, want v3 refresh", v3.Version(), v3.Origin())
	}
	if _, ok := v3.React().Stages["reextract"]; !ok {
		t.Errorf("refresh reaction stages = %v, want reextract", v3.React().Stages)
	}

	// The pinned v1 still reads its own commit; At time-travels within the
	// retention window.
	if v1.Version() != 1 {
		t.Error("pinned view moved")
	}
	back, err := v3.At(1)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != 1 || back.Table().Len() != v1.Table().Len() {
		t.Error("At(1) did not return the first committed version")
	}
	if got := v3.Versions(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Versions = %v, want [1 2 3]", got)
	}
}

func TestRetentionPrunesOldVersions(t *testing.T) {
	s := mustRun(t,
		wrangle.WithSeed(6),
		wrangle.WithSyntheticSources(4),
		wrangle.WithRetainVersions(2),
	)
	for i := 0; i < 3; i++ {
		if _, err := s.Refresh(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	v, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	if v.Version() != 4 {
		t.Fatalf("version = %d, want 4 (run + 3 refreshes)", v.Version())
	}
	if got := v.Versions(); len(got) != 2 || got[0] != 3 {
		t.Errorf("Versions = %v, want [3 4]", got)
	}
	if _, err := v.At(1); err == nil {
		t.Error("At(1) should report the version pruned")
	}
}

func TestRetainVersionsOptionValidation(t *testing.T) {
	if _, err := wrangle.New(wrangle.WithRetainVersions(0)); err == nil {
		t.Error("WithRetainVersions(0) should be rejected")
	}
	if _, err := wrangle.New(wrangle.WithRetainVersions(-2)); err == nil {
		t.Error("WithRetainVersions(-2) should be rejected")
	}
}

// TestWrangledImmutableAcrossReactions pins the aliasing fix: the table a
// caller got before a reaction must not change under them when the
// reaction recomputes — reads go through copy-on-write versions, not the
// live working data.
func TestWrangledImmutableAcrossReactions(t *testing.T) {
	s := mustRun(t, wrangle.WithSeed(5), wrangle.WithSyntheticSources(6))
	before := s.Wrangled()
	frozen := before.String()
	trustBefore := s.Trust()

	rep := s.Report("prices", "price")
	suspect := s.SelectedSources()[0]
	var items []wrangle.Feedback
	for i := 0; i < 5; i++ {
		items = append(items, wrangle.Feedback{
			Kind: wrangle.ValueIncorrect, SourceID: suspect,
			Entity: rep.Lines[0].Entity, Attribute: "price", Cost: 0.5,
		})
	}
	if _, err := s.ApplyFeedback(context.Background(), items...); err != nil {
		t.Fatal(err)
	}
	if before.String() != frozen {
		t.Error("table handed out before the reaction was mutated by it")
	}
	if s.Wrangled() == before {
		t.Error("reaction should publish a fresh table, not rewrite the old one")
	}
	// The old trust copy is equally frozen (the reaction lowered the
	// suspect's trust in the *new* version only).
	if tr, ok := s.Trust()[suspect]; !ok || tr >= 0.5 {
		t.Errorf("new trust[%s] = %.2f, want < 0.5", suspect, tr)
	}
	if tr := trustBefore[suspect]; tr < 0.5 && tr != 0 {
		t.Errorf("old trust copy changed to %.2f", tr)
	}
}

// TestConcurrentViewReaders is the serving-layer acceptance test: N
// goroutines continuously read pinned views while feedback and refresh
// reactions churn the session. Under -race this proves the read path is
// data-race free; the assertions prove every observed version is
// internally consistent (table, stats, report and source snapshot all
// from the same commit) and that versions and provenance steps never run
// backwards. Readers never touch the session lock, so they keep
// completing reads while reactions are in flight. The sharded subtest
// runs the same workload against the sharded integration tail, whose
// per-shard delta publishes alias record storage across versions — the
// race detector proving no reaction ever writes through a shared page.
func TestConcurrentViewReaders(t *testing.T) {
	t.Run("sequential", func(t *testing.T) { runConcurrentViewReaders(t) })
	t.Run("sharded", func(t *testing.T) {
		runConcurrentViewReaders(t, wrangle.WithIntegrationShards(4))
	})
}

func runConcurrentViewReaders(t *testing.T, extra ...wrangle.Option) {
	s := mustRun(t, append([]wrangle.Option{
		wrangle.WithSeed(7),
		wrangle.WithSyntheticSources(6),
		wrangle.WithParallelism(2),
		wrangle.WithRetainVersions(3),
	}, extra...)...)
	first, err := s.View()
	if err != nil {
		t.Fatal(err)
	}

	const reactions = 12
	var (
		writerDone = make(chan struct{})
		reads      atomic.Int64
	)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVersion, lastStep := uint64(0), uint64(0)
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				v, err := s.View()
				if err != nil {
					t.Errorf("View: %v", err)
					return
				}
				if v.Version() < lastVersion {
					t.Errorf("version ran backwards: %d after %d", v.Version(), lastVersion)
					return
				}
				if v.Step() < lastStep {
					t.Errorf("provenance step ran backwards: %d after %d", v.Step(), lastStep)
					return
				}
				lastVersion, lastStep = v.Version(), v.Step()

				// Internal consistency of the pinned version: the stats,
				// table, report and source snapshot must all describe the
				// same commit.
				tab, stats := v.Table(), v.Stats()
				if tab.Len() != stats.RowsWrangled {
					t.Errorf("v%d torn: table %d rows, stats say %d", v.Version(), tab.Len(), stats.RowsWrangled)
					return
				}
				srcs := v.Sources()
				for _, id := range v.Selected() {
					if _, ok := srcs[id]; !ok {
						t.Errorf("v%d torn: selected %s missing from sources", v.Version(), id)
						return
					}
				}
				for _, line := range v.Report().Lines {
					for _, sup := range line.Supporters {
						if _, ok := srcs[sup]; !ok {
							t.Errorf("v%d torn: supporter %s missing from sources", v.Version(), sup)
							return
						}
					}
				}
				reads.Add(1)
				// Yield so the writer makes progress even on one core;
				// readers still interleave with every reaction.
				runtime.Gosched()
			}
		}()
	}

	// The writer: alternate feedback reactions and source refreshes.
	var lines []wrangle.ReportLine
	for _, l := range first.Report().Lines {
		if len(l.Supporters) > 0 {
			lines = append(lines, l)
		}
	}
	if len(lines) == 0 {
		t.Fatal("no report lines with supporters")
	}
	for i := 0; i < reactions; i++ {
		if i%2 == 0 {
			line := lines[i%len(lines)]
			_, err = s.ApplyFeedback(context.Background(), wrangle.Feedback{
				Kind: wrangle.ValueIncorrect, SourceID: line.Supporters[0],
				Entity: line.Entity, Attribute: line.Attribute, Cost: 0.5,
			})
		} else {
			// A two-source batch keeps each reaction long enough to overlap
			// many reads without making the -race run crawl.
			ids := s.SelectedSources()
			if len(ids) > 2 {
				ids = ids[:2]
			}
			_, err = s.Refresh(context.Background(), ids...)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(writerDone)
	wg.Wait()

	final, err := s.View()
	if err != nil {
		t.Fatal(err)
	}
	if final.Version() != uint64(1+reactions) {
		t.Errorf("final version = %d, want %d", final.Version(), 1+reactions)
	}
	if reads.Load() == 0 {
		t.Error("readers made no progress while reactions ran")
	}
	// The pinned first view still reads version 1's data even though that
	// version may have been pruned from the retention window.
	if first.Version() != 1 || first.Table().Len() == 0 {
		t.Error("pinned first view no longer readable")
	}
}
