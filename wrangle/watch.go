package wrangle

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/serve"
)

// ErrCompacted reports that a requested version precedes the session
// store's retention window: it was published once but has been pruned, so
// neither View.At nor Watch catch-up can serve it. Re-bootstrap from the
// latest version (View / Watch from View.Version()).
var ErrCompacted = serve.ErrCompacted

// ChangeSet is the publisher's summary of what one committed version
// changed relative to its predecessor. Sharded sessions
// (WithIntegrationShards) bound the delta — which shards were rebuilt,
// which records changed or vanished — while sequential sessions publish
// Full change sets (no page bookkeeping to diff). Slices are sorted and
// read-only.
type ChangeSet = serve.ChangeSet

// CancelFunc detaches a change-feed subscription. Idempotent and safe to
// call concurrently; the subscription channel closes promptly after.
type CancelFunc = serve.CancelFunc

// Change is one change-feed event: a view pinned to the committed version
// plus the publisher's change summary. Consumers that maintain a mirror
// apply Changes against View (ChangedRecords resolve to rows via
// View.Entities, which is sorted); consumers that only need a
// notification read Version() and fetch lazily.
type Change struct {
	// View is pinned to the version this event announces — the same
	// immutable, copy-on-write snapshot Session.View hands out, so
	// holding many changes costs O(sum of deltas) on sharded sessions,
	// not O(events × table).
	View *View
	// Changes summarises what this version changed against its
	// predecessor (Full when the session could not bound it).
	Changes ChangeSet
	// Evicted marks the final event of a subscription that fell behind:
	// its buffer was full when View's version was published. The channel
	// closes right after; resume with Watch(lastSeenVersion), or
	// re-bootstrap from Session.View if that version is already
	// compacted.
	Evicted bool
}

// Version returns the announced version's sequence number.
func (c Change) Version() uint64 { return c.View.Version() }

// WithWatchBuffer sets the per-subscriber delivery buffer for the
// session's change feed (n >= 1; default serve.DefaultWatchBuffer). A
// subscriber that falls more than n undelivered versions behind is
// evicted — publications never block on a slow consumer — so n trades
// per-subscriber memory against tolerance for consumer stalls.
func WithWatchBuffer(n int) Option {
	return func(s *settings) error {
		if n < 1 {
			return fmt.Errorf("watch buffer must be at least 1, got %d", n)
		}
		s.watchBuffer = n
		return nil
	}
}

// Watch subscribes to the session's change feed from just after
// fromVersion: the channel first replays every retained version with a
// higher sequence number (catch-up), then pushes each subsequent
// publication — Run, ApplyFeedback, Refresh — as it commits, gapless and
// in order. fromVersion is the last version the caller has already seen:
// 0 subscribes from the beginning, View.Version() from "now".
//
// Errors: ErrCompacted when catch-up would need a version already pruned
// from the retention window (re-bootstrap from Session.View), or a plain
// error when fromVersion has not been published yet.
//
// Delivery is push with a bounded per-subscriber buffer (WithWatchBuffer):
// a subscriber that stops draining receives one final Change with Evicted
// set and its channel is closed — publishers never block, so one stuck
// watcher cannot stall reactions or other subscribers. Cancelling (the
// CancelFunc, or ctx) closes the channel without an eviction notice. The
// channel is closed on every termination path; range over it.
func (s *Session) Watch(ctx context.Context, fromVersion uint64) (<-chan Change, CancelFunc, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	inner, cancel, err := s.w.Serve.Watch(ctx, fromVersion)
	if err != nil {
		return nil, nil, fmt.Errorf("wrangle: %w", err)
	}
	// Translate the store's generic events into facade Changes. The out
	// channel is unbuffered on purpose: backpressure lands on the store's
	// per-subscriber buffer, so eviction accounting stays in one place
	// (the effective slack is the store buffer plus the one change in
	// flight here).
	out := make(chan Change)
	done := make(chan struct{})
	var once sync.Once
	stop := func() {
		once.Do(func() { close(done) })
		cancel()
	}
	go func() {
		// Detach from the store before closing out (LIFO defers), so a
		// consumer that sees the feed close also sees Watchers drop.
		defer close(out)
		defer cancel()
		for c := range inner {
			ev := Change{
				View:    &View{store: s.w.Serve, v: c.Version},
				Changes: c.Changes,
				Evicted: c.Evicted,
			}
			select {
			case out <- ev:
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, stop, nil
}

// Watchers reports the session's live change-feed subscriptions.
func (s *Session) Watchers() int { return s.w.Serve.Watchers() }
