// Package extract re-exports the wrapper-induction machinery (§2.2)
// through the public API surface: parse HTML pages, induce a wrapper from
// listing pages or a handful of detail pages, run it across a site, and
// repair it when the site's layout drifts. Most callers never need this —
// the wrangle facade drives extraction automatically — but scenarios that
// wrap sites directly (the deep-web workload of Example 3) use it
// standalone.
package extract

import (
	"repro/internal/dataset"
	"repro/internal/extract"
	"repro/internal/html"
	"repro/internal/ontology"
)

// Re-exported extraction types.
type (
	// Node is one parsed HTML node.
	Node = html.Node
	// Table is the tabular output of extraction (same type as
	// wrangle.Table).
	Table = dataset.Table
	// Taxonomy is a domain ontology guiding field labelling (same type
	// as wrangle.Taxonomy).
	Taxonomy = ontology.Taxonomy
	// Wrapper is an induced extraction program for one source.
	Wrapper = extract.Wrapper
	// FieldRule locates and labels one extracted field.
	FieldRule = extract.FieldRule
	// RepairReport summarises a wrapper repair pass.
	RepairReport = extract.RepairReport
)

// Parse parses an HTML payload into a node tree.
func Parse(payload string) *Node { return html.Parse(payload) }

// Induce infers a wrapper from a single listing page, optionally guided
// by a domain taxonomy.
func Induce(sourceID string, page *Node, tax *Taxonomy) (*Wrapper, error) {
	return extract.Induce(sourceID, page, tax)
}

// InduceDetail infers a wrapper from example detail pages (one entity per
// page) by aligning fields across pages; site-constant boilerplate is
// discarded.
func InduceDetail(sourceID string, pages []*Node, tax *Taxonomy) (*Wrapper, error) {
	return extract.InduceDetail(sourceID, pages, tax)
}

// ExtractSite runs a detail wrapper over every page of a site and returns
// the extracted table.
func ExtractSite(w *Wrapper, pages []*Node) (*Table, error) {
	return extract.ExtractSite(w, pages)
}
