package wrangle

import "repro/internal/obs"

// Metrics is a session's telemetry registry: named atomic counters,
// gauges and fixed-bucket histograms, rendered in Prometheus text
// format by WritePrometheus. Registration is get-or-create, so callers
// may register their own application metrics alongside the session's
// (cmd/watchload records its delivery-latency histogram this way).
//
// See the README's Observability section for the metric catalogue.
type Metrics = obs.Registry

// Counter is a monotonically increasing atomic counter; nil-safe.
type Counter = obs.Counter

// Gauge is an atomic float64 gauge; nil-safe.
type Gauge = obs.Gauge

// Histogram is a fixed-bucket cumulative histogram with allocation-free
// observation and quantile estimation; nil-safe.
type Histogram = obs.Histogram

// NewHistogram builds a standalone histogram (not attached to any
// registry) with the given upper bucket bounds.
func NewHistogram(bounds []float64) *Histogram { return obs.NewHistogram(bounds) }

// DurationBuckets returns the default histogram bounds for durations in
// seconds (100µs … 10s).
func DurationBuckets() []float64 { return obs.DurationBuckets() }

// SizeBuckets returns the default histogram bounds for byte sizes
// (256B … 16MiB).
func SizeBuckets() []float64 { return obs.SizeBuckets() }

// WithMetrics enables session telemetry: every pipeline run and
// reaction records per-stage and per-task duration histograms, shard
// reuse ratios and publish delta sizes; the serve store counts
// lock-free reads, time-travel reads, typed read errors and change-feed
// subscribe/delivery/eviction traffic; durable sessions additionally
// count WAL appends, bytes, fsyncs, compactions and replay
// truncations. Retrieve the registry with Session.Metrics.
//
// Without this option telemetry is off and Session.Metrics returns
// nil; every instrumentation site then costs a single nil check, so
// the disabled path stays out of hot-path profiles.
func WithMetrics() Option {
	return func(s *settings) error {
		s.metrics = true
		return nil
	}
}

// Metrics returns the session's telemetry registry, or nil when the
// session was built without WithMetrics. The registry is safe for
// concurrent use — scrape it from any goroutine while the session
// reacts.
func (s *Session) Metrics() *Metrics {
	return s.w.Metrics()
}
